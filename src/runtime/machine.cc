#include "runtime/machine.h"

#include <algorithm>
#include <sstream>

#include <unordered_map>

#include "common/logging.h"
#include "elastic/migration.h"
#include "exec/serial_executor.h"
#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "txn/rw_set.h"

namespace tpart {

Machine::Machine(MachineId id, std::size_t num_machines, KvStore* store,
                 const ProcedureRegistry* registry, SendFn send,
                 SinkEpoch sticky_ttl, int executor_workers)
    : id_(id),
      num_machines_(num_machines),
      store_(store),
      registry_(registry),
      send_(std::move(send)),
      sticky_ttl_(sticky_ttl),
      storage_(store, sticky_ttl),
      executor_workers_(std::max(executor_workers, 1)) {}

Machine::~Machine() {
  if (executor_.joinable()) executor_.join();
  for (auto& t : worker_pool_) {
    if (t.joinable()) t.join();
  }
  if (recovery_executor_.joinable()) recovery_executor_.join();
  if (service_.joinable()) {
    Deliver(Message{});  // kShutdown default
    service_.join();
  }
}

void Machine::SendOut(MachineId to, Message msg) {
  if (replay_) return;  // §5.4 replay is local
  send_(to, std::move(msg));
}

void Machine::SendOutBatch(std::vector<std::pair<MachineId, Message>>& msgs) {
  if (replay_ || msgs.empty()) return;  // §5.4 replay is local
  if (send_batch_) {
    send_batch_(msgs);
  } else {
    for (auto& [to, msg] : msgs) send_(to, std::move(msg));
  }
}

void Machine::EnqueueTPartEpoch(SinkEpoch epoch,
                                std::vector<PlanItem> items) {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    for (auto& item : items) {
      tpart_work_.push_back(WorkUnit{epoch, std::move(item), false});
    }
  }
  work_cv_.notify_all();
}

void Machine::EnqueueCalvinTxn(TxnSpec spec) {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    calvin_work_.push_back(std::move(spec));
  }
  work_cv_.notify_one();
}

void Machine::FinishEnqueue() {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    finished_enqueue_ = true;
  }
  work_cv_.notify_all();
}

void Machine::StartTPart() {
  service_running_ = true;
  service_ = std::thread([this] { ServiceLoop(); });
  executor_ = std::thread([this] { TPartWorkerLoop(/*initial=*/true); });
  for (int wkr = 1; wkr < executor_workers_; ++wkr) {
    worker_pool_.emplace_back([this] { TPartWorkerLoop(/*initial=*/false); });
  }
}

void Machine::StartCalvin() {
  service_running_ = true;
  service_ = std::thread([this] { ServiceLoop(); });
  executor_ = std::thread([this] { CalvinExecutorLoop(); });
}

void Machine::JoinExecutor() {
  if (executor_.joinable()) executor_.join();
  for (auto& t : worker_pool_) {
    if (t.joinable()) t.join();
  }
  worker_pool_.clear();
}

void Machine::JoinRecoveredExecutor() {
  if (recovery_executor_.joinable()) recovery_executor_.join();
}

void Machine::Stop() {
  // Drain first: by the time a machine is stopped, every peer executor
  // has joined and the cluster has Flush()ed the transport, so all
  // in-flight messages already sit in the inbound queue; processing up
  // to the shutdown sentinel applies any remaining write-backs before
  // the storage front-end closes.
  if (service_.joinable()) {
    Message stop;
    stop.type = Message::Type::kShutdown;
    inbound_.Send(std::move(stop));
    service_.join();
  }
  cache_.Shutdown();
  storage_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(resp_mu_);
    resp_shutdown_ = true;
  }
  resp_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(peer_mu_);
    peer_shutdown_ = true;
  }
  peer_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(credit_mu_);
    credit_shutdown_ = true;
  }
  credit_cv_.notify_all();
  service_running_ = false;
}

std::vector<TxnResult> Machine::TakeResults() {
  std::lock_guard<std::mutex> lock(results_mu_);
  return std::move(results_);
}

// ---------------------------------------------------------------------
// Service thread
// ---------------------------------------------------------------------

void Machine::ServiceLoop() {
  TPART_TRACE(SetThreadInfo(static_cast<int>(1 + id_), "service"));
  while (true) {
    Message msg = inbound_.Receive();
    if (msg.type == Message::Type::kShutdown) return;
    if (run_state_.load(std::memory_order_acquire) == RunState::kDown) {
      // Crash-stop: the machine is gone. Heartbeats are dropped so the
      // failure detector sees the stall (and a stale checkpoint barrier
      // died with the executor that posted it); everything else is
      // stashed — the reliability layer already acked it on delivery into
      // our inbound queue, so dropping it would lose it forever.
      // Re-injecting the stash at recovery models the peers' transport
      // retransmitting to the rebuilt machine.
      if (msg.type != Message::Type::kHeartbeat &&
          msg.type != Message::Type::kCheckpointBarrier) {
        std::lock_guard<std::mutex> lock(crash_mu_);
        if (run_state_.load(std::memory_order_relaxed) == RunState::kDown) {
          down_stash_.push_back(std::move(msg));
          continue;
        }
        // Recovery flipped the state (under crash_mu_) since the fast
        // check; fall through and process normally.
      } else {
        continue;
      }
    }
    Dispatch(std::move(msg));
  }
}

void Machine::Dispatch(Message msg) {
  // Coordinator-term fence (DESIGN §4j): every control-plane message
  // carries the term of the coordinator that issued it. Adopt the
  // highest term ever witnessed — from ANY stamped message, heartbeats
  // included, so terms propagate even between rounds — and drop stream /
  // migration control traffic stamped with an older term: a deposed
  // zombie leader's in-flight plan stream must not truncate or fork the
  // new term's. Data-plane traffic is never fenced (exactly-once
  // delivery plus idempotent intake already make duplicates safe, and
  // §5.4 replay legitimately re-delivers old-term messages). term 0 =
  // unfenced legacy traffic, always passes.
  if (msg.term != 0) {
    std::uint64_t seen = fence_term_.load(std::memory_order_acquire);
    while (seen < msg.term &&
           !fence_term_.compare_exchange_weak(seen, msg.term,
                                              std::memory_order_acq_rel)) {
    }
    if (msg.term < seen) {
      switch (msg.type) {
        case Message::Type::kSinkPlan:
        case Message::Type::kPlanStreamEnd:
        case Message::Type::kMigrateBegin:
        case Message::Type::kPartitionImage:
        case Message::Type::kMigrateCommit:
          fenced_messages_.fetch_add(1, std::memory_order_relaxed);
          TPART_TRACE(Instant("fenced_stale_term", "fault",
                              {{"machine", id_},
                               {"stale_term", msg.term},
                               {"current_term", seen}}));
          TPART_FLIGHT(obs::FlightEvent::kFencedMessage, 1 + id_, msg.term,
                       seen);
          return;
        default:
          break;
      }
    }
  }
  // The §5.4 network log records every inbound value-bearing message the
  // machine actually processes, except re-deliveries of already-logged
  // traffic (offline replay, and recovery's redelivery-marked
  // re-injections). Genuinely new traffic arriving while kRecovering IS
  // logged — a later crash must be able to replay it too.
  const bool log = log_recording_ && !replay_ && !msg.redelivery &&
                   run_state_.load(std::memory_order_relaxed) !=
                       RunState::kDown;
  switch (msg.type) {
    case Message::Type::kShutdown:
      return;  // handled by ServiceLoop; unreachable here
    case Message::Type::kHeartbeat:
      // Straggler fault mode: delay at most one heartbeat per period so
      // responses skirt the detector deadline without ever fully
      // stalling. A correct detector must ride this out.
      if (straggle_delay_us_ > 0) {
        const auto now = std::chrono::steady_clock::now();
        if (now - last_straggle_ >=
            std::chrono::microseconds(straggle_period_us_)) {
          last_straggle_ = now;
          std::this_thread::sleep_for(
              std::chrono::microseconds(straggle_delay_us_));
        }
      }
      // Never logged: replaying stale probes would confuse a detector.
      heartbeat_seen_.store(msg.req_id, std::memory_order_release);
      break;
    case Message::Type::kCheckpointBarrier:
      // The executor fenced at a drained epoch boundary: every earlier
      // message in this FIFO queue has been fully applied, so capture
      // here and truncate the logs.
      CaptureCheckpoint(msg.epoch);
      break;
    case Message::Type::kPushVersion:
      // The PUSH-log (§5.4): remember pushed values for local replay.
      if (log) LogNetworkMessage(msg);
      cache_.PutVersion(msg.key, msg.version, msg.dst_txn,
                        std::move(msg.value));
      break;
    case Message::Type::kCacheReadReq: {
      // Logged so replay re-serves the same reads and entry/version
      // refcounts line up (§5.4 local replay).
      if (log) LogNetworkMessage(msg);
      auto v = cache_.TryEpochEntry(msg.key, msg.version, msg.invalidate,
                                    msg.total_reads);
      if (v.has_value()) {
        Message resp;
        resp.type = Message::Type::kCacheReadResp;
        resp.req_id = msg.req_id;
        resp.value = std::move(*v);
        SendOut(msg.reply_to, std::move(resp));
      } else {
        std::lock_guard<std::mutex> lock(stream_mu_);
        parked_pulls_[{msg.key, msg.version}].push_back(std::move(msg));
      }
      break;
    }
    case Message::Type::kLocalPublish: {
      std::vector<Message> reqs;
      {
        std::lock_guard<std::mutex> lock(stream_mu_);
        auto it = parked_pulls_.find({msg.key, msg.version});
        if (it != parked_pulls_.end()) {
          reqs = std::move(it->second);
          parked_pulls_.erase(it);
        }
      }
      for (Message& req : reqs) {
        auto v = cache_.TryEpochEntry(req.key, req.version, req.invalidate,
                                      req.total_reads);
        if (!v.has_value()) {
          // A stale publish note re-injected from the crash stash can
          // precede the replay's re-publication of the entry; re-park
          // and let the genuine note serve it.
          std::lock_guard<std::mutex> lock(stream_mu_);
          parked_pulls_[{req.key, req.version}].push_back(std::move(req));
          continue;
        }
        Message resp;
        resp.type = Message::Type::kCacheReadResp;
        resp.req_id = req.req_id;
        resp.value = std::move(*v);
        SendOut(req.reply_to, std::move(resp));
      }
      break;
    }
    case Message::Type::kCacheReadResp:
    case Message::Type::kStorageReadResp: {
      if (log) LogNetworkMessage(msg);
      {
        std::lock_guard<std::mutex> lock(resp_mu_);
        responses_[msg.req_id] = std::move(msg.value);
      }
      resp_cv_.notify_all();
      break;
    }
    case Message::Type::kStorageReadReq: {
      if (log) LogNetworkMessage(msg);
      const MachineId reply_to = msg.reply_to;
      const std::uint64_t req_id = msg.req_id;
      // The tag lets a checkpoint capture a still-parked remote read and
      // a recovery rebuild this reply callback from it.
      storage_.AsyncRead(msg.key, msg.version,
                         [this, reply_to, req_id](Record value) {
                           Message resp;
                           resp.type = Message::Type::kStorageReadResp;
                           resp.req_id = req_id;
                           resp.value = std::move(value);
                           SendOut(reply_to, std::move(resp));
                         },
                         StorageService::RemoteReadTag{reply_to, req_id});
      break;
    }
    case Message::Type::kWriteBackApply:
      if (log) LogNetworkMessage(msg);
      storage_.ApplyWriteBack(msg.key, msg.version, msg.replaces,
                              std::move(msg.value), msg.awaits, msg.sticky,
                              msg.epoch);
      break;
    case Message::Type::kPeerReads: {
      if (log) LogNetworkMessage(msg);
      {
        std::lock_guard<std::mutex> lock(peer_mu_);
        auto& bucket = peer_reads_[msg.txn];
        for (auto& [key, value] : msg.kvs) {
          bucket[key] = std::move(value);
        }
      }
      peer_cv_.notify_all();
      break;
    }
    // Elastic migration. Never network-logged: a replay re-shipping a
    // partition image would resurrect moved keys; the forced checkpoint
    // after the migration owns durability of the move instead.
    case Message::Type::kMigrateBegin:
      HandleMigrateBegin(std::move(msg));
      break;
    case Message::Type::kPartitionImage:
      HandleImageChunk(std::move(msg));
      break;
    case Message::Type::kMigrateCommit:
      HandleMigrateCommit(std::move(msg));
      break;
    case Message::Type::kServiceFence:
      {
        std::lock_guard<std::mutex> lock(fence_mu_);
        if (msg.req_id > fence_seen_) fence_seen_ = msg.req_id;
      }
      fence_cv_.notify_all();
      break;
    // Streaming dissemination. Not network-logged: §5.4 replay re-runs
    // from the request log, which ExecutePlan populates either way.
    case Message::Type::kSinkPlan:
      HandleSinkPlan(std::move(msg));
      break;
    case Message::Type::kPlanStreamEnd: {
      bool finish = false;
      {
        std::lock_guard<std::mutex> lock(stream_mu_);
        stream_end_seen_ = true;
        stream_final_epoch_ = msg.epoch;
        // The end marker can overtake delayed rounds on an unordered
        // transport; only finish once every round up to it is enqueued.
        finish = next_stream_epoch_ > stream_final_epoch_;
      }
      if (finish) FinishEnqueue();
      break;
    }
    // Coordinator replication (DESIGN §4i). Replica-to-replica traffic is
    // handled by CoordinatorReplicaSet; a copy reaching a worker machine
    // is ignored. Never network-logged: the replicated request log owns
    // its own durability, and replaying acks would confuse a later term.
    case Message::Type::kLogAppend:
    case Message::Type::kLogAck:
      break;
    case Message::Type::kLeaderClaim:
      // Watermark probe from a (new) leader: report the highest
      // contiguous sink round this machine has enqueued, so catch-up
      // re-ships only rounds we might actually be missing.
      if (msg.reply_to != kInvalidMachine) {
        Message ack;
        ack.type = Message::Type::kLogAck;
        ack.key = 2;  // watermark kind (see channel.h)
        ack.req_id = msg.req_id;
        ack.txn = static_cast<TxnId>(id_);
        {
          std::lock_guard<std::mutex> lock(stream_mu_);
          ack.epoch = next_stream_epoch_ - 1;
        }
        SendOut(msg.reply_to, std::move(ack));
      }
      break;
  }
}

// ---------------------------------------------------------------------
// Streaming intake
// ---------------------------------------------------------------------

void Machine::HandleSinkPlan(Message msg) {
  Result<SinkPlan> plan = DecodeSinkPlan(msg.plan_bytes);
  TPART_CHECK(plan.ok()) << "bad sink plan on the wire: "
                         << plan.status().ToString();
  std::unordered_map<TxnId, TxnSpec> spec_of;
  spec_of.reserve(msg.specs.size());
  for (TxnSpec& spec : msg.specs) spec_of.emplace(spec.id, std::move(spec));

  std::vector<PlanItem> slice;
  for (TxnPlan& p : plan->txns) {
    if (p.machine != id_) continue;
    auto node = spec_of.extract(p.txn);
    TPART_CHECK(!node.empty()) << "round " << plan->epoch
                               << " plan for T" << p.txn << " has no spec";
    slice.push_back(PlanItem{std::move(p), std::move(node.mapped())});
  }
  TPART_FLIGHT(obs::FlightEvent::kRoundReceived, 1 + id_, plan->epoch,
               slice.size());
  // Causal timelines: the wire-carried trace context names the origin
  // and coordinator term, so a sampled transaction's receive marker
  // stitches into its cross-machine span even across failover terms.
  if (msg.trace_ctx != 0 && txn_sample_ != 0) {
    for (const PlanItem& item : slice) {
      if (obs::SampledTxn(item.plan.txn, txn_sample_)) {
        TPART_TRACE(AsyncInstant("round_received", "timeline", item.plan.txn,
                                 {{"machine", id_},
                                  {"epoch", plan->epoch},
                                  {"term", obs::TraceCtxTerm(msg.trace_ctx)}}));
      }
    }
  }

  std::vector<std::pair<SinkEpoch, std::vector<PlanItem>>> ready;
  bool finish = false;
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    if (plan->epoch < next_stream_epoch_ ||
        pending_stream_plans_.count(plan->epoch) != 0) {
      // Duplicate round: recovery re-ships a window of recent rounds and
      // cannot know how far this machine got, so intake is idempotent.
      ++duplicate_rounds_dropped_;
      TPART_TRACE(Instant("dup_round_dropped", "stream",
                          {{"epoch", plan->epoch}}));
      return;
    }
    if (plan->epoch == recovered_partial_epoch_ &&
        !recovered_partial_txns_.empty()) {
      // The machine crashed mid-round; the §5.4 replay already re-ran the
      // round's logged prefix, so only the remainder executes live.
      slice.erase(std::remove_if(slice.begin(), slice.end(),
                                 [&](const PlanItem& item) {
                                   return recovered_partial_txns_.count(
                                              item.plan.txn) != 0;
                                 }),
                  slice.end());
    }
    pending_stream_plans_.emplace(plan->epoch, std::move(slice));
    // Deliver in order; a reliable-but-unordered transport may have
    // handed us later rounds first.
    for (auto it = pending_stream_plans_.begin();
         it != pending_stream_plans_.end() &&
         it->first == next_stream_epoch_;
         it = pending_stream_plans_.erase(it), ++next_stream_epoch_) {
      ready.emplace_back(it->first, std::move(it->second));
    }
    finish = stream_end_seen_ && next_stream_epoch_ > stream_final_epoch_;
  }
  for (auto& [epoch, items] : ready) {
    EnqueueStreamEpoch(epoch, std::move(items));
  }
  if (finish) FinishEnqueue();
}

void Machine::EnqueueStreamEpoch(SinkEpoch epoch,
                                 std::vector<PlanItem> items) {
  const bool empty = items.empty();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    if (!empty) epoch_outstanding_[epoch] = items.size();
    for (auto& item : items) {
      tpart_work_.push_back(WorkUnit{epoch, std::move(item), false});
    }
  }
  work_cv_.notify_all();
  // A round with no local slice holds its credit for no reason.
  if (empty) ReleaseEpochCredit();
}

bool Machine::OnPlanItemDone(SinkEpoch epoch) {
  const bool release = MarkPlanItemDone(epoch);
  if (release) ReleaseEpochCredit();
  return release;
}

bool Machine::MarkPlanItemDone(SinkEpoch epoch) {
  std::lock_guard<std::mutex> lock(work_mu_);
  auto it = epoch_outstanding_.find(epoch);
  if (it != epoch_outstanding_.end() && --it->second == 0) {
    epoch_outstanding_.erase(it);
    return true;
  }
  return false;
}

bool Machine::AcquireEpochCredit() {
  return AcquireEpochCreditFor(std::chrono::microseconds{0}) ==
         CreditGrant::kGrantedAfterWait;
}

Machine::CreditGrant Machine::AcquireEpochCreditFor(
    std::chrono::microseconds timeout) {
  if (epoch_queue_capacity_ == 0) return CreditGrant::kGranted;  // unbounded
  std::unique_lock<std::mutex> lock(credit_mu_);
  bool waited = false;
  const auto open = [&] {
    return epochs_in_flight_ < epoch_queue_capacity_ || credit_shutdown_;
  };
  if (!open()) {
    waited = true;
    if (timeout.count() <= 0) {
      credit_cv_.wait(lock, open);
    } else if (!credit_cv_.wait_for(lock, timeout, open)) {
      return CreditGrant::kTimedOut;
    }
  }
  ++epochs_in_flight_;
  if (epochs_in_flight_ > epoch_high_water_) {
    epoch_high_water_ = epochs_in_flight_;
  }
  return waited ? CreditGrant::kGrantedAfterWait : CreditGrant::kGranted;
}

void Machine::ReleaseEpochCredit() {
  if (epoch_queue_capacity_ == 0) return;
  {
    std::lock_guard<std::mutex> lock(credit_mu_);
    if (epochs_in_flight_ > 0) --epochs_in_flight_;
  }
  // notify_all: a migration barrier's WaitStreamDrained may be waiting on
  // the same cv as an AcquireEpochCredit caller.
  credit_cv_.notify_all();
}

std::size_t Machine::epoch_queue_high_water() const {
  std::lock_guard<std::mutex> lock(credit_mu_);
  return epoch_high_water_;
}

std::size_t Machine::epochs_in_flight() const {
  std::lock_guard<std::mutex> lock(credit_mu_);
  return epochs_in_flight_;
}

// ---------------------------------------------------------------------
// T-Part executor
// ---------------------------------------------------------------------

void Machine::TPartWorkerLoop(bool initial) {
  TPART_TRACE(SetThreadInfo(static_cast<int>(1 + id_), "executor"));
  // The epoch-0 edge of the chaos matrix: the machine dies before any
  // plan runs. Only the StartTPart() executor honours it — a recovery
  // executor must not re-fire the same point.
  if (initial && crash_armed_.load(std::memory_order_acquire)) {
    bool fire = false;
    {
      std::lock_guard<std::mutex> lock(crash_mu_);
      fire = !crash_points_.empty() && crash_points_.front().at_start;
    }
    if (fire) {
      CrashStop(/*resume=*/1);
      return;
    }
  }
  // Workers pop plans in total order; the version-based CC makes the
  // outcome independent of which worker runs which plan (a read blocks
  // until its named version exists, produced by an earlier — hence
  // already-popped — transaction or a remote machine).
  while (true) {
    WorkUnit unit;
    bool evict = false;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] {
        return !tpart_work_.empty() || finished_enqueue_ ||
               run_state_.load(std::memory_order_relaxed) ==
                   RunState::kDown;
      });
      // Crash-stop: abandon queued work mid-stream. Only the crashing
      // worker itself observes this (crash injection requires a single
      // worker), re-evaluating the predicate right after its own
      // CrashStop() call.
      if (run_state_.load(std::memory_order_relaxed) == RunState::kDown) {
        return;
      }
      if (tpart_work_.empty()) return;
      unit = std::move(tpart_work_.front());
      tpart_work_.pop_front();
      if (unit.epoch > evicted_upto_) {
        evicted_upto_ = unit.epoch;
        evict = true;
      }
    }
    if (evict) {
      cache_.EvictExpiredSticky(
          unit.epoch > sticky_ttl_ ? unit.epoch - sticky_ttl_ : 0);
    }
    ExecutePlan(unit.epoch, unit.item, unit.replay);
  }
}

void Machine::ExecutePlan(SinkEpoch epoch, const PlanItem& item,
                          bool is_replay) {
  const TxnPlan& p = item.plan;
  const TxnSpec& spec = item.spec;
  TPART_CHECK(p.machine == id_);
  // Request log: "the transaction requests are logged only after they are
  // partitioned, and each machine logs only those requests that are
  // assigned to itself" (§5.4). Entries may interleave across workers;
  // replay re-sorts by txn id. Replayed plans are already in the log.
  if (log_recording_ && !replay_ && !is_replay) {
    std::lock_guard<std::mutex> lock(log_mu_);
    request_log_.push_back(RequestLogEntry{epoch, item});
    request_log_bytes_ +=
        sizeof(RequestLogEntry) +
        item.spec.params.size() * sizeof(item.spec.params[0]);
    if (request_log_bytes_ > request_log_bytes_peak_) {
      request_log_bytes_peak_ = request_log_bytes_;
    }
  }

  // In-run recovery re-executes logged plans with outbound traffic
  // suppressed, exactly like offline replay (§5.4): peers already
  // received these pushes/requests/write-backs before the crash, and
  // version/epoch entries are consume-once, so re-sending would corrupt
  // their refcounts.
  const auto send_out = [&](MachineId to, Message m) {
    if (!is_replay) SendOut(to, std::move(m));
  };

  TPART_TRACE_SPAN("txn", is_replay ? "replay" : "exec",
                   {{"txn", p.txn}, {"epoch", epoch}});
  TPART_FLIGHT(obs::FlightEvent::kExecute, 1 + id_, p.txn, epoch);
  if (obs::SampledTxn(p.txn, txn_sample_)) {
    TPART_TRACE(AsyncInstant(is_replay ? "replayed" : "executed", "timeline",
                             p.txn, {{"machine", id_}, {"epoch", epoch}}));
  }

  // ---- Gather every planned read (the version-based deterministic CC:
  // each read waits for its exact version, §5.2).
  TPART_TRACE(Begin("gather", "exec", {{"reads", p.reads.size()}}));
  // Per-worker scratch (DESIGN §4h): the gather map, pending-response
  // list, and publish outbox keep their capacity across plans, so the
  // steady-state executor loop stops allocating. A worker runs one plan
  // at a time, and the scratch never escapes the call.
  struct PendingResp {
    ObjectKey key;
    std::uint64_t req_id;
  };
  struct PlanScratch {
    ExecScratch exec;
    std::vector<PendingResp> pending;
    std::vector<std::pair<MachineId, Message>> outbox;
  };
  thread_local PlanScratch scratch;
  scratch.exec.Clear();
  scratch.pending.clear();
  auto& values = scratch.exec.values;
  auto& pending = scratch.pending;
  // Request ids are deterministic functions of (txn, read position) so a
  // §5.4 replay pairs logged responses with re-issued requests no matter
  // how worker threads interleave.
  TPART_CHECK(p.reads.size() < 1024) << "read set too wide for req ids";
  std::uint32_t read_idx = 0;
  for (const ReadStep& r : p.reads) {
    const std::uint64_t req_id = (p.txn << 10) | read_idx++;
    switch (r.kind) {
      case ReadSourceKind::kLocalVersion:
      case ReadSourceKind::kPush: {
        auto v = cache_.AwaitVersion(r.key, r.src_txn, p.txn);
        values[r.key] = v.has_value() ? std::move(*v) : Record::Absent();
        // The consumer end of the forward-push arrow: the producing
        // transaction's span holds the matching FlowStart.
        if (r.kind == ReadSourceKind::kPush && !is_replay) {
          TPART_TRACE(FlowEnd("push", obs::PushFlowId(r.key, r.src_txn,
                                                      p.txn)));
        }
        break;
      }
      case ReadSourceKind::kCacheLocal: {
        auto v = cache_.AwaitEpochEntry(r.key, r.src_txn,
                                        r.invalidate_entry,
                                        r.entry_total_reads);
        values[r.key] = v.has_value() ? std::move(*v) : Record::Absent();
        TPART_TRACE(Instant("cache_hit", "cache",
                            {{"key", r.key}, {"txn", p.txn}}));
        break;
      }
      case ReadSourceKind::kCacheRemote: {
        Message req;
        req.type = Message::Type::kCacheReadReq;
        req.key = r.key;
        req.version = r.src_txn;
        req.invalidate = r.invalidate_entry;
        req.total_reads = r.entry_total_reads;
        req.reply_to = id_;
        req.req_id = req_id;
        send_out(r.src_machine, std::move(req));
        pending.push_back(PendingResp{r.key, req_id});
        break;
      }
      case ReadSourceKind::kStorage: {
        if (r.src_machine == id_) {
          if (stall_timeout_.count() > 0) {
            Result<Record> v =
                storage_.BlockingReadFor(r.key, r.src_txn, stall_timeout_);
            TPART_CHECK(v.ok())
                << "T" << p.txn << " stalled on local storage read of key "
                << r.key << " v" << r.src_txn << ": " << StallDiagnostic();
            values[r.key] = std::move(*v);
          } else {
            values[r.key] = storage_.BlockingRead(r.key, r.src_txn);
          }
        } else {
          Message req;
          req.type = Message::Type::kStorageReadReq;
          req.key = r.key;
          req.version = r.src_txn;
          req.reply_to = id_;
          req.req_id = req_id;
          send_out(r.src_machine, std::move(req));
          pending.push_back(PendingResp{r.key, req_id});
        }
        break;
      }
    }
  }
  for (auto& pr : pending) {
    values[pr.key] = AwaitResponse(pr.req_id);
  }
  TPART_TRACE(End());  // gather

  // A failed run (AbortPendingWaits) drains without executing: the
  // gathered values are shutdown placeholders, and procedures are
  // entitled to assume real records.
  if (draining_.load(std::memory_order_acquire)) {
    TxnResult res;
    res.id = p.txn;
    {
      std::lock_guard<std::mutex> lock(results_mu_);
      results_.push_back(std::move(res));
    }
    OnPlanItemDone(epoch);
    executed_plans_.fetch_add(1, std::memory_order_relaxed);
    if (is_replay &&
        replay_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(crash_mu_);
      run_state_.store(RunState::kLive, std::memory_order_release);
      crash_cv_.notify_all();
    }
    return;
  }

  // ---- Execute the stored procedure.
  TPART_TRACE(Begin("procedure", "exec"));
  GatheredTxnContext ctx(&spec, &scratch.exec);
  Result<TxnResult> result = RunProcedure(*registry_, spec, ctx);
  TPART_CHECK(result.ok()) << "engine failure executing T" << p.txn << ": "
                           << result.status().ToString();
  const bool committed = result->committed;
  TPART_TRACE(End());  // procedure

  // ---- Outbound plan steps. An aborted transaction forwards the values
  // it read (§5.3), which OutgoingValue() encapsulates. Pushes and remote
  // write-backs are staged in an outbox and flushed as ONE batch at the
  // end of the phase (nothing here awaits a reply, so deferring them is
  // safe — unlike the gather phase's read requests).
  TPART_TRACE(Begin("publish", "exec", {{"pushes", p.pushes.size()}}));
  auto& outbox = scratch.outbox;
  outbox.clear();
  outbox.reserve(p.pushes.size() + p.write_backs.size());
  const auto stage_out = [&](MachineId to, Message m) {
    if (!is_replay) outbox.emplace_back(to, std::move(m));
  };
  for (const PushStep& s : p.pushes) {
    // The producer end of the forward-push arrow; the consumer's gather
    // span holds the matching FlowEnd.
    if (!is_replay) {
      TPART_TRACE(FlowStart("push", obs::PushFlowId(s.key, s.version_txn,
                                                    s.dst_txn)));
    }
    Message m;
    m.type = Message::Type::kPushVersion;
    m.key = s.key;
    m.version = s.version_txn;
    m.dst_txn = s.dst_txn;
    m.value = ctx.OutgoingValue(s.key, committed);
    stage_out(s.dst_machine, std::move(m));
  }
  for (const LocalVersionStep& s : p.local_versions) {
    cache_.PutVersion(s.key, s.version_txn, s.dst_txn,
                      ctx.OutgoingValue(s.key, committed));
  }
  for (const CachePublishStep& s : p.cache_publishes) {
    cache_.PublishEpochEntry(s.key, p.txn, s.epoch,
                             ctx.OutgoingValue(s.key, committed));
    Message note;
    note.type = Message::Type::kLocalPublish;
    note.key = s.key;
    note.version = p.txn;
    inbound_.Send(std::move(note));  // wake parked remote pulls
  }
  for (const WriteBackStep& s : p.write_backs) {
    Record value = ctx.OutgoingValue(s.key, committed);
    if (s.home == id_) {
      storage_.ApplyWriteBack(s.key, s.version_txn, s.replaces_version,
                              std::move(value), s.readers_to_await,
                              s.make_sticky, epoch);
    } else {
      Message m;
      m.type = Message::Type::kWriteBackApply;
      m.key = s.key;
      m.version = s.version_txn;
      m.replaces = s.replaces_version;
      m.value = std::move(value);
      m.awaits = s.readers_to_await;
      m.sticky = s.make_sticky;
      m.epoch = epoch;
      stage_out(s.home, std::move(m));
    }
  }
  SendOutBatch(outbox);
  TPART_TRACE(End());  // publish

  {
    std::lock_guard<std::mutex> lock(results_mu_);
    results_.push_back(std::move(*result));
  }
  // Replayed plans already fired their commit hook pre-crash; firing
  // again would double-count latency samples.
  if (commit_hook_ && !is_replay) commit_hook_(p.txn);
  // The credit release for a drained round is deferred past the crash
  // trigger below (see MarkPlanItemDone): anyone woken by the release —
  // in particular a membership barrier's WaitStreamDrained — must already
  // observe CrashStop's state flip.
  const bool drained = MarkPlanItemDone(epoch);
  const std::uint64_t executed =
      executed_plans_.fetch_add(1, std::memory_order_relaxed) + 1;

  if (is_replay &&
      replay_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Replay complete: the machine rejoins the stream. Recover() is
    // blocked on this flip; the cluster re-ships lost rounds only after
    // it returns, so live rounds never race the replay.
    std::lock_guard<std::mutex> lock(crash_mu_);
    run_state_.store(RunState::kLive, std::memory_order_release);
    crash_cv_.notify_all();
  }

  // Periodic checkpoint: the executor fences at the first drained epoch
  // boundary at or past the cadence point, before any crash trigger at
  // the same boundary — a crash at epoch E then recovers from the fresh
  // checkpoint at E with an empty replay suffix.
  if (!is_replay && drained && checkpoint_ != nullptr &&
      checkpoint_every_ > 0 &&
      !draining_.load(std::memory_order_acquire) &&
      run_state_.load(std::memory_order_relaxed) == RunState::kLive &&
      epoch >= next_checkpoint_epoch_) {
    RunCheckpointBarrier(epoch);
    next_checkpoint_epoch_ = epoch + checkpoint_every_;
  }

  if (!is_replay && crash_armed_.load(std::memory_order_relaxed)) {
    CrashPoint point;
    {
      std::lock_guard<std::mutex> lock(crash_mu_);
      if (!crash_points_.empty()) point = crash_points_.front();
    }
    // >= so a round with no local slice (which never drains here) cannot
    // disarm the trigger: the first drained round at or past the target
    // fires it.
    const bool epoch_hit =
        point.at_epoch != 0 && epoch >= point.at_epoch && drained;
    const bool txn_hit =
        point.after_txns != 0 && executed == point.after_txns;
    if (epoch_hit || txn_hit) {
      // Single-worker FIFO execution means rounds complete in order: if
      // the current round drained, everything lost starts at the next
      // round; otherwise this round itself is partially lost.
      CrashStop(drained ? epoch + 1 : epoch);
    }
  }
  if (drained) ReleaseEpochCredit();
}

Record Machine::AwaitResponse(std::uint64_t req_id) {
  std::unique_lock<std::mutex> lock(resp_mu_);
  const auto ready = [&] {
    return resp_shutdown_ || responses_.count(req_id) > 0;
  };
  if (stall_timeout_.count() > 0) {
    // StallDiagnostic never touches resp_mu_, so reporting under the
    // lock is safe.
    TPART_CHECK(resp_cv_.wait_for(lock, stall_timeout_, ready))
        << "stalled awaiting response " << req_id << ": "
        << StallDiagnostic();
  } else {
    resp_cv_.wait(lock, ready);
  }
  auto it = responses_.find(req_id);
  if (it == responses_.end()) return Record::Absent();
  Record v = std::move(it->second);
  responses_.erase(it);
  return v;
}

// ---------------------------------------------------------------------
// Crash injection & in-run recovery (§5.4 made live)
// ---------------------------------------------------------------------

void Machine::ArmCrash(CrashPoint point) {
  TPART_CHECK(point.armed()) << "empty crash point";
  TPART_CHECK(executor_workers_ == 1)
      << "crash injection needs a single FIFO worker: the crash point and "
         "hence the replayed suffix must be deterministic";
  TPART_CHECK(log_recording_)
      << "crash recovery replays the §5.4 logs; enable log recording";
  std::lock_guard<std::mutex> lock(crash_mu_);
  TPART_CHECK(!point.at_start || crash_points_.empty())
      << "an at_start crash point must be the first queued";
  crash_points_.push_back(point);
  crash_armed_.store(true, std::memory_order_release);
}

void Machine::ArmStraggler(std::uint64_t delay_us, std::uint64_t period_us) {
  TPART_CHECK(delay_us > 0 && period_us > 0) << "empty straggler schedule";
  straggle_delay_us_ = delay_us;
  straggle_period_us_ = period_us;
}

void Machine::CrashStop(SinkEpoch resume) {
  std::lock_guard<std::mutex> lock(crash_mu_);
  if (run_state_.load(std::memory_order_relaxed) != RunState::kLive) return;
  // Pop the fired point; more queued points (the chaos matrix's repeat
  // crashes) keep the trigger armed for the recovered machine.
  if (!crash_points_.empty()) crash_points_.pop_front();
  crash_armed_.store(!crash_points_.empty(), std::memory_order_relaxed);
  crash_time_ = std::chrono::steady_clock::now();
  resume_epoch_ = resume;
  run_state_.store(RunState::kDown, std::memory_order_release);
  TPART_TRACE(Instant("crash_stop", "fault",
                      {{"machine", id_}, {"resume_epoch", resume}}));
  TPART_FLIGHT(obs::FlightEvent::kCrashStop, 1 + id_, id_, resume);
}

bool Machine::crashed() const {
  return run_state_.load(std::memory_order_acquire) != RunState::kLive;
}

std::chrono::steady_clock::time_point Machine::crash_time() const {
  std::lock_guard<std::mutex> lock(crash_mu_);
  return crash_time_;
}

SinkEpoch Machine::resume_epoch() const {
  std::lock_guard<std::mutex> lock(crash_mu_);
  return resume_epoch_;
}

std::size_t Machine::Recover(const std::function<void()>& restore_partition) {
  TPART_CHECK(run_state_.load(std::memory_order_acquire) == RunState::kDown)
      << "Recover() on a machine that did not crash";
  TPART_TRACE_SPAN("recover", "fault", {{"machine", id_}});
  SinkEpoch resume;
  {
    std::lock_guard<std::mutex> lock(crash_mu_);
    resume = resume_epoch_;
  }

  // 1. The crash lost all volatile state. The dead executor has exited
  //    its loop (it observes kDown under work_mu_) and the service thread
  //    only stashes while kDown, so every structure below is quiescent.
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    tpart_work_.clear();
    epoch_outstanding_.clear();
    finished_enqueue_ = false;
    evicted_upto_ = 0;
  }
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    pending_stream_plans_.clear();
    parked_pulls_.clear();
    stream_end_seen_ = false;
    stream_final_epoch_ = 0;
    next_stream_epoch_ = resume;
    recovered_partial_epoch_ = resume;
    recovered_partial_txns_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(resp_mu_);
    responses_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(peer_mu_);
    peer_reads_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    results_.clear();
  }
  cache_.Reset();
  storage_.Reset();

  // 2. Restore the partition from its checkpoint (cost proportional to
  //    this partition only), then — when a periodic capture has run —
  //    the volatile images it saved: the truncated request log is only
  //    replayable on top of the cache entries and storage version gates
  //    that existed at the capture boundary.
  restore_partition();
  SinkEpoch cp_epoch = 0;
  if (checkpoint_ != nullptr) {
    cp_epoch = checkpoint_->epoch();
    if (cp_epoch > 0) {
      // A capture happens at a drained boundary E, so any later crash
      // resumes strictly past it; an inverted pair would mean the resend
      // window was pruned past rounds we still need.
      TPART_CHECK(cp_epoch < resume)
          << "machine " << id_ << " checkpoint at epoch " << cp_epoch
          << " does not precede resume epoch " << resume;
      {
        // The truncated prefix's results only exist in the capture.
        std::lock_guard<std::mutex> results_lock(results_mu_);
        results_ = checkpoint_->results;
      }
      cache_.Restore(checkpoint_->cache);
      storage_.Restore(
          checkpoint_->storage,
          [this](const StorageService::RemoteReadTag& tag) {
            return [this, tag](Record value) {
              Message resp;
              resp.type = Message::Type::kStorageReadResp;
              resp.req_id = tag.req_id;
              resp.value = std::move(value);
              SendOut(tag.reply_to, std::move(resp));
            };
          });
    }
  }

  // 3. §5.4 local replay: re-enqueue the request log grouped by sinking
  //    round in txn order, tagged as replay (outbound suppressed, not
  //    re-logged). Plans logged for the resume round itself are the
  //    partially-executed prefix of a mid-round crash; the re-shipped
  //    round skips them (recovered_partial_txns_).
  std::map<SinkEpoch, std::vector<PlanItem>> rounds;
  std::size_t replayed = 0;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    replayed = request_log_.size();
    for (const auto& entry : request_log_) {
      rounds[entry.epoch].push_back(entry.item);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    auto it = rounds.find(resume);
    if (it != rounds.end()) {
      for (const auto& item : it->second) {
        recovered_partial_txns_.insert(item.plan.txn);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    for (auto& [epoch, items] : rounds) {
      std::sort(items.begin(), items.end(),
                [](const PlanItem& a, const PlanItem& b) {
                  return a.plan.txn < b.plan.txn;
                });
      for (auto& item : items) {
        tpart_work_.push_back(WorkUnit{epoch, std::move(item), true});
      }
    }
  }
  replay_remaining_.store(replayed, std::memory_order_release);

  // 4. Reopen the service and re-deliver the inbound past: the parked
  //    remote pulls the checkpoint saved, then the network log (the §5.4
  //    PUSH-log generalised, now just the post-checkpoint suffix), then
  //    the traffic that arrived while down. Parking in the cache and the
  //    storage service makes processing order irrelevant. The state flip
  //    happens under crash_mu_, so no concurrent message can be stranded
  //    in the stash afterwards. Log/checkpoint re-injections carry the
  //    redelivery mark (already logged once); the stash does not — those
  //    messages were never processed, and a second crash must be able to
  //    replay them.
  std::vector<Message> stash;
  {
    std::lock_guard<std::mutex> lock(crash_mu_);
    run_state_.store(replayed == 0 ? RunState::kLive : RunState::kRecovering,
                     std::memory_order_release);
    stash.swap(down_stash_);
  }
  if (cp_epoch > 0) {
    for (Message m : checkpoint_->parked_pulls) {
      m.redelivery = true;
      inbound_.Send(std::move(m));
    }
  }
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    for (const Message& m : network_log_) {
      Message copy = m;
      copy.redelivery = true;
      inbound_.Send(std::move(copy));
    }
  }
  for (Message& m : stash) inbound_.Send(std::move(m));

  // 5. A fresh executor re-runs the replay, then keeps serving live
  //    rounds until the (re-shipped) stream end. Block until the replay
  //    drains: the caller re-ships lost rounds only after that, so live
  //    work never interleaves with the replayed suffix. A repeat crash
  //    fires on the previous recovery executor itself, which then exits —
  //    join it before spawning its replacement.
  if (recovery_executor_.joinable()) recovery_executor_.join();
  recovery_executor_ =
      std::thread([this] { TPartWorkerLoop(/*initial=*/false); });
  {
    std::unique_lock<std::mutex> lock(crash_mu_);
    crash_cv_.wait(lock, [&] {
      return run_state_.load(std::memory_order_relaxed) == RunState::kLive;
    });
  }
  TPART_TRACE(Instant("replay_done", "fault",
                      {{"machine", id_}, {"replayed", replayed}}));
  TPART_FLIGHT(obs::FlightEvent::kRecover, 1 + id_, id_, replayed);
  return replayed;
}

// ---------------------------------------------------------------------
// Periodic checkpointing & log truncation
// ---------------------------------------------------------------------

void Machine::ConfigureCheckpoint(MachineCheckpoint* image, SinkEpoch every) {
  TPART_CHECK(every == 0 || executor_workers_ == 1)
      << "periodic checkpointing needs a single FIFO worker: the barrier "
         "fences one executor at a drained epoch boundary";
  TPART_CHECK(every == 0 || log_recording_)
      << "checkpoint truncation is pointless without the §5.4 logs";
  checkpoint_ = image;
  checkpoint_every_ = every;
  next_checkpoint_epoch_ = every;
}

void Machine::RunCheckpointBarrier(SinkEpoch epoch) {
  TPART_TRACE_SPAN("checkpoint_barrier", "checkpoint",
                   {{"machine", id_}, {"epoch", epoch}});
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_waiting_ = true;
    ckpt_done_ = false;
    ckpt_epoch_ = epoch;
  }
  Message barrier;
  barrier.type = Message::Type::kCheckpointBarrier;
  barrier.epoch = epoch;
  inbound_.Send(std::move(barrier));
  // Wait for the service thread to capture. This pause is local: other
  // machines keep executing; only this machine's epoch pipeline stalls
  // for the (incremental, O(dirty)) capture.
  std::unique_lock<std::mutex> lock(ckpt_mu_);
  ckpt_cv_.wait(lock, [&] { return ckpt_done_; });
}

void Machine::CaptureCheckpoint(SinkEpoch epoch) {
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    if (!ckpt_waiting_ || ckpt_epoch_ != epoch) return;  // stale barrier
    ckpt_waiting_ = false;
  }
  if (checkpoint_ == nullptr) return;
  TPART_TRACE_SPAN("checkpoint_capture", "checkpoint",
                   {{"machine", id_}, {"epoch", epoch}});
  const auto start = std::chrono::steady_clock::now();
  MachineCheckpoint& cp = *checkpoint_;

  // Every message that preceded the barrier in the inbound FIFO has been
  // fully applied, and the executor (blocked in RunCheckpointBarrier)
  // has executed every request-log entry — so the images below cover
  // exactly the effects of rounds <= epoch, and both §5.4 logs truncate
  // to empty: later traffic forms the replay suffix.
  cp.records_captured +=
      cp.records.ApplyDirty(*store_, storage_.TakeDirtyKeys());
  cp.cache = cache_.Capture();
  cp.storage = storage_.Capture();
  {
    // Suffix replay cannot regenerate the truncated prefix's results, so
    // the capture carries everything accumulated up to the boundary.
    std::lock_guard<std::mutex> lock(results_mu_);
    cp.results = results_;
  }
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    cp.parked_pulls.clear();
    for (const auto& [key_version, reqs] : parked_pulls_) {
      (void)key_version;
      cp.parked_pulls.insert(cp.parked_pulls.end(), reqs.begin(), reqs.end());
    }
  }
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    cp.truncated_request_entries += request_log_.size();
    cp.truncated_network_messages += network_log_.size();
    request_log_.clear();
    network_log_.clear();
    request_log_bytes_ = 0;
    network_log_bytes_ = 0;
  }
  ++cp.captures_taken;
  cp.capture_us += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  // Publish the epoch last: once visible, the cluster may prune resend
  // rounds <= epoch, which is only safe after the images are complete.
  cp.set_epoch(epoch);
  TPART_FLIGHT(obs::FlightEvent::kCheckpoint, 1 + id_, id_, epoch);

  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_done_ = true;
  }
  ckpt_cv_.notify_all();
}

void Machine::InstallCheckpoint(MachineCheckpoint& cp) {
  if (cp.epoch() == 0) return;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    results_ = cp.results;
  }
  cache_.Restore(cp.cache);
  storage_.Restore(cp.storage,
                   [this](const StorageService::RemoteReadTag& tag) {
                     return [this, tag](Record value) {
                       Message resp;
                       resp.type = Message::Type::kStorageReadResp;
                       resp.req_id = tag.req_id;
                       resp.value = std::move(value);
                       SendOut(tag.reply_to, std::move(resp));
                     };
                   });
  for (Message m : cp.parked_pulls) {
    m.redelivery = true;
    inbound_.Send(std::move(m));
  }
}

void Machine::LogNetworkMessage(const Message& msg) {
  std::lock_guard<std::mutex> lock(log_mu_);
  network_log_.push_back(msg);
  network_log_bytes_ += ApproxMessageBytes(msg);
  if (network_log_bytes_ > network_log_bytes_peak_) {
    network_log_bytes_peak_ = network_log_bytes_;
  }
}

std::size_t Machine::request_log_bytes() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return request_log_bytes_;
}

std::size_t Machine::network_log_bytes() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return network_log_bytes_;
}

std::size_t Machine::request_log_bytes_peak() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return request_log_bytes_peak_;
}

std::size_t Machine::network_log_bytes_peak() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return network_log_bytes_peak_;
}

// ---------------------------------------------------------------------
// Elastic migration (src/elastic)
// ---------------------------------------------------------------------

Status Machine::WaitStreamDrained(std::chrono::microseconds timeout) {
  TPART_CHECK(epoch_queue_capacity_ > 0)
      << "stream drain barrier needs a bounded epoch queue: at capacity 0 "
         "credits are not tracked";
  std::unique_lock<std::mutex> lock(credit_mu_);
  const auto drained = [&] {
    return epochs_in_flight_ == 0 || credit_shutdown_;
  };
  if (timeout.count() <= 0) {
    credit_cv_.wait(lock, drained);
    return Status::Ok();
  }
  if (!credit_cv_.wait_for(lock, timeout, drained)) {
    lock.unlock();  // StallDiagnostic takes credit_mu_
    return Status::Unavailable("stream drain timed out: " +
                               StallDiagnostic());
  }
  return Status::Ok();
}

Status Machine::FenceService(std::chrono::microseconds timeout) {
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(fence_mu_);
    seq = ++fence_posted_;
  }
  Message fence;
  fence.type = Message::Type::kServiceFence;
  fence.req_id = seq;
  // Direct into the inbound queue, never through the transport: the fence
  // is a local ordering marker, not a wire message.
  inbound_.Send(std::move(fence));
  std::unique_lock<std::mutex> lock(fence_mu_);
  const auto done = [&] { return fence_seen_ >= seq; };
  if (timeout.count() <= 0) {
    fence_cv_.wait(lock, done);
    return Status::Ok();
  }
  if (!fence_cv_.wait_for(lock, timeout, done)) {
    lock.unlock();
    return Status::Unavailable("service fence timed out: " +
                               StallDiagnostic());
  }
  return Status::Ok();
}

void Machine::ForceCheckpoint(SinkEpoch epoch) {
  TPART_CHECK(checkpoint_ != nullptr)
      << "migration barrier needs an attached checkpoint image";
  TPART_CHECK(run_state_.load(std::memory_order_acquire) == RunState::kLive)
      << "forced checkpoint on a non-live machine";
  RunCheckpointBarrier(epoch);
}

void Machine::HandleMigrateBegin(Message msg) {
  const std::uint64_t stream = msg.req_id;
  {
    // The done-set doubles as the idempotence guard: a duplicate begin
    // must not re-capture keys that were already extracted and dropped.
    std::lock_guard<std::mutex> lock(migrate_mu_);
    if (!migration_source_done_.insert(stream).second) return;
  }
  Result<std::vector<ObjectKey>> keys = DecodeKeyList(msg.plan_bytes);
  TPART_CHECK(keys.ok()) << "bad migration key list on machine " << id_
                         << ": " << keys.status().ToString();
  const MachineId target = static_cast<MachineId>(msg.dst_txn);
  TPART_TRACE_SPAN("migrate_source", "elastic",
                   {{"machine", id_},
                    {"target", target},
                    {"keys", keys->size()},
                    {"cut", msg.epoch}});

  // Capture the partition image: record, version-discipline state, and
  // sticky cache entry per key — then drop everything locally. ExtractKeys
  // CHECKs that no parked storage work exists (the barrier quiesced the
  // stream), and marks the keys dirty so the forced capture folds the
  // deletions into this machine's checkpoint.
  std::unordered_map<ObjectKey, StorageService::MigratedKeyState> state_of;
  for (auto& st : storage_.ExtractKeys(*keys)) {
    const ObjectKey key = st.key;
    state_of.emplace(key, std::move(st));
  }
  PartitionImage image;
  image.entries.reserve(keys->size());
  std::uint64_t records = 0;
  for (const ObjectKey key : *keys) {
    PartitionImage::KeyEntry e;
    e.key = key;
    Result<Record> r = store_->Read(key);
    if (r.ok()) {
      e.present = true;
      e.value = std::move(*r);
      // Cannot miss: the key was read one line up under the same fence.
      (void)store_->Delete(key);
      ++records;
    }
    auto st = state_of.find(key);
    if (st != state_of.end()) {
      e.has_state = true;
      e.current = st->second.current;
      e.reads_served_since_wb = st->second.reads_served_since_wb;
      e.has_sticky = st->second.has_sticky;
      e.sticky_expire = st->second.sticky_expire;
    }
    if (auto sticky = cache_.ExtractSticky(key); sticky.has_value()) {
      e.has_cache_sticky = true;
      e.cache_sticky_value = std::move(sticky->value);
      e.cache_sticky_version = sticky->version;
      e.cache_sticky_expire = sticky->expire_epoch;
    }
    image.entries.push_back(std::move(e));
  }
  storage_.MarkDirty(*keys);

  const std::string encoded = EncodePartitionImage(image);
  const std::vector<std::string> chunks = ChunkImage(encoded);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    Message chunk;
    chunk.type = Message::Type::kPartitionImage;
    chunk.req_id = stream;
    chunk.epoch = i;                 // chunk index
    chunk.txn = chunks.size();       // total chunks
    chunk.plan_bytes = chunks[i];
    chunk.term = msg.term;  // fence chain: begin's term covers the stream
    SendOut(target, std::move(chunk));
  }
  Message commit;
  commit.type = Message::Type::kMigrateCommit;
  commit.term = msg.term;
  commit.req_id = stream;
  commit.key = WireChecksum(encoded);  // image checksum
  commit.txn = chunks.size();
  commit.version = image.entries.size();
  commit.epoch = msg.epoch;
  SendOut(target, std::move(commit));

  {
    std::lock_guard<std::mutex> lock(migrate_mu_);
    migration_counters_.keys_moved_out += keys->size();
    migration_counters_.records_moved += records;
    migration_counters_.bytes_shipped += encoded.size();
    migration_counters_.chunks_shipped += chunks.size();
    ++migration_counters_.images_sent;
  }
}

void Machine::HandleImageChunk(Message msg) {
  const std::uint64_t stream = msg.req_id;
  bool install = false;
  {
    std::lock_guard<std::mutex> lock(migrate_mu_);
    if (migration_installed_.count(stream) != 0) {
      ++migration_counters_.duplicate_chunks_dropped;
      return;
    }
    InboundImage& img = inbound_images_[stream];
    if (!img.chunks.emplace(msg.epoch, std::move(msg.plan_bytes)).second) {
      ++migration_counters_.duplicate_chunks_dropped;
      return;
    }
    install = img.commit_seen && img.chunks.size() == img.expect_chunks;
  }
  if (install) InstallMigration(stream);
}

void Machine::HandleMigrateCommit(Message msg) {
  const std::uint64_t stream = msg.req_id;
  bool install = false;
  {
    std::lock_guard<std::mutex> lock(migrate_mu_);
    if (migration_installed_.count(stream) != 0) return;  // dup commit
    InboundImage& img = inbound_images_[stream];
    if (img.commit_seen) return;  // dup commit, still assembling
    img.commit_seen = true;
    img.expect_chunks = msg.txn;
    img.expect_entries = msg.version;
    img.checksum = static_cast<std::uint32_t>(msg.key);
    // A faulty transport may reorder the commit ahead of trailing chunks;
    // install fires from the last chunk's handler in that case.
    install = img.chunks.size() == img.expect_chunks;
  }
  if (install) InstallMigration(stream);
}

void Machine::InstallMigration(std::uint64_t stream) {
  std::string encoded;
  std::uint32_t checksum = 0;
  std::uint64_t expect_entries = 0;
  {
    std::lock_guard<std::mutex> lock(migrate_mu_);
    auto it = inbound_images_.find(stream);
    TPART_CHECK(it != inbound_images_.end());
    InboundImage& img = it->second;
    TPART_CHECK(img.chunks.size() == img.expect_chunks);
    std::uint64_t next = 0;
    for (const auto& [idx, bytes] : img.chunks) {
      TPART_CHECK(idx == next++) << "migration chunk gap at " << idx;
      encoded += bytes;
    }
    checksum = img.checksum;
    expect_entries = img.expect_entries;
    inbound_images_.erase(it);
  }
  TPART_CHECK(WireChecksum(encoded) == checksum)
      << "migration image checksum mismatch on machine " << id_
      << " (stream " << stream << ")";
  Result<PartitionImage> image = DecodePartitionImage(encoded);
  TPART_CHECK(image.ok()) << "bad migration image on machine " << id_
                          << ": " << image.status().ToString();
  TPART_CHECK(image->entries.size() == expect_entries);
  TPART_TRACE_SPAN("migrate_install", "elastic",
                   {{"machine", id_}, {"keys", image->entries.size()}});

  std::vector<StorageService::MigratedKeyState> states;
  std::vector<ObjectKey> all_keys;
  all_keys.reserve(image->entries.size());
  for (auto& e : image->entries) {
    all_keys.push_back(e.key);
    if (e.present) {
      store_->Upsert(e.key, std::move(e.value));
    } else if (store_->Contains(e.key)) {
      // Cannot miss: guarded by the Contains() probe above.
      (void)store_->Delete(e.key);
    }
    if (e.has_state) {
      states.push_back(StorageService::MigratedKeyState{
          e.key, e.current, e.reads_served_since_wb, e.has_sticky,
          e.sticky_expire});
    }
    if (e.has_cache_sticky) {
      cache_.InstallSticky(CacheArea::Image::StickyImage{
          e.key, std::move(e.cache_sticky_value), e.cache_sticky_version,
          e.cache_sticky_expire});
    }
  }
  storage_.InstallKeys(states);
  // Mark every moved key dirty (not just the stateful ones) so the forced
  // post-migration checkpoint folds the installed records in.
  storage_.MarkDirty(all_keys);
  {
    std::lock_guard<std::mutex> lock(migrate_mu_);
    migration_installed_.insert(stream);
    migration_counters_.keys_moved_in += all_keys.size();
    ++migration_counters_.images_installed;
  }
}

bool Machine::MigrationSourceDone(std::uint64_t stream) const {
  std::lock_guard<std::mutex> lock(migrate_mu_);
  return migration_source_done_.count(stream) != 0;
}

bool Machine::MigrationInstalled(std::uint64_t stream) const {
  std::lock_guard<std::mutex> lock(migrate_mu_);
  return migration_installed_.count(stream) != 0;
}

Machine::MigrationCounters Machine::migration_counters() const {
  std::lock_guard<std::mutex> lock(migrate_mu_);
  return migration_counters_;
}

std::string Machine::StallDiagnostic() const {
  std::ostringstream out;
  out << "machine " << id_;
  switch (run_state_.load(std::memory_order_acquire)) {
    case RunState::kLive:
      out << " state=live";
      break;
    case RunState::kDown:
      out << " state=down";
      break;
    case RunState::kRecovering:
      out << " state=recovering";
      break;
  }
  out << " inbound=" << inbound_.size();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    out << " work=" << tpart_work_.size()
        << " rounds_in_progress=" << epoch_outstanding_.size()
        << " finished_enqueue=" << (finished_enqueue_ ? 1 : 0);
  }
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    out << " pending_rounds=" << pending_stream_plans_.size()
        << " next_epoch=" << next_stream_epoch_
        << " dup_rounds_dropped=" << duplicate_rounds_dropped_;
  }
  {
    std::lock_guard<std::mutex> lock(credit_mu_);
    out << " credits_in_flight=" << epochs_in_flight_;
  }
  {
    std::lock_guard<std::mutex> lock(crash_mu_);
    out << " stashed=" << down_stash_.size();
  }
  out << " executed=" << executed_plans_.load(std::memory_order_relaxed)
      << " heartbeat_seen=" << heartbeat_seen()
      << " fence_term=" << fence_term()
      << " fenced=" << fenced_messages();
  if (diagnostic_context_) out << diagnostic_context_();
  std::string text = out.str();
  TPART_TRACE(Instant("stall_diagnostic", "fault", {{"machine", id_}},
                      text));
  // A stall diagnostic only fires on fault paths (expired executor waits,
  // drain/fence timeouts, failure declarations), so it doubles as the
  // flight recorder's auto-dump trigger: the post-mortem tail carries
  // this marker plus whatever led up to it.
  TPART_FLIGHT(obs::FlightEvent::kStall, 1 + id_, id_,
               executed_plans_.load(std::memory_order_relaxed));
  TPART_FLIGHT_DUMP("stall");
  return text;
}

void Machine::AbortPendingWaits() {
  draining_.store(true, std::memory_order_release);
  cache_.Shutdown();
  storage_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(resp_mu_);
    resp_shutdown_ = true;
  }
  resp_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(peer_mu_);
    peer_shutdown_ = true;
  }
  peer_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(credit_mu_);
    credit_shutdown_ = true;
  }
  credit_cv_.notify_all();
}

// ---------------------------------------------------------------------
// Calvin executor
// ---------------------------------------------------------------------

void Machine::CalvinExecutorLoop() {
  TPART_TRACE(SetThreadInfo(static_cast<int>(1 + id_), "executor"));
  while (true) {
    TxnSpec spec;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] {
        return !calvin_work_.empty() || finished_enqueue_;
      });
      if (calvin_work_.empty()) return;
      spec = std::move(calvin_work_.front());
      calvin_work_.pop_front();
    }
    ExecuteCalvin(spec);
  }
}

void Machine::ExecuteCalvin(const TxnSpec& spec) {
  TPART_TRACE_SPAN("txn", "exec", {{"txn", spec.id}});
  // Calvin (§2.1): read local footprint, push to peers, wait for peers'
  // reads, execute the full procedure, write local keys.
  const KeySet all_keys = spec.rw.AllKeys();
  std::vector<MachineId> participants;
  std::vector<ObjectKey> remote_keys;
  // Per-worker scratch, reused across transactions (DESIGN §4h).
  thread_local ExecScratch exec_scratch;
  exec_scratch.Clear();
  auto& values = exec_scratch.values;
  std::vector<std::pair<ObjectKey, Record>> local_kvs;
  for (const ObjectKey k : all_keys) {
    const MachineId home = locate_(k);
    if (std::find(participants.begin(), participants.end(), home) ==
        participants.end()) {
      participants.push_back(home);
    }
    if (home == id_) {
      Result<Record> r = store_->Read(k);
      Record value = r.ok() ? std::move(*r) : Record::Absent();
      local_kvs.emplace_back(k, value);
      values.emplace(k, std::move(value));
    } else {
      remote_keys.push_back(k);
    }
  }

  for (const MachineId peer : participants) {
    if (peer == id_) continue;
    Message m;
    m.type = Message::Type::kPeerReads;
    m.txn = spec.id;
    m.kvs = local_kvs;
    SendOut(peer, std::move(m));
  }

  if (!remote_keys.empty()) {
    std::unique_lock<std::mutex> lock(peer_mu_);
    const auto ready = [&] {
      if (peer_shutdown_) return true;
      auto it = peer_reads_.find(spec.id);
      if (it == peer_reads_.end()) return false;
      for (const ObjectKey k : remote_keys) {
        if (it->second.count(k) == 0) return false;
      }
      return true;
    };
    if (stall_timeout_.count() > 0) {
      // StallDiagnostic never touches peer_mu_.
      TPART_CHECK(peer_cv_.wait_for(lock, stall_timeout_, ready))
          << "stalled awaiting peer reads for T" << spec.id << ": "
          << StallDiagnostic();
    } else {
      peer_cv_.wait(lock, ready);
    }
    auto it = peer_reads_.find(spec.id);
    if (it != peer_reads_.end()) {
      for (auto& [key, value] : it->second) {
        values[key] = std::move(value);
      }
      peer_reads_.erase(it);
    }
  }

  GatheredTxnContext ctx(&spec, &exec_scratch);
  Result<TxnResult> result = RunProcedure(*registry_, spec, ctx);
  TPART_CHECK(result.ok()) << "engine failure executing T" << spec.id
                           << ": " << result.status().ToString();
  if (result->committed) {
    for (auto& [key, rec] : ctx.writes()) {
      if (locate_(key) != id_) continue;  // "local write" (§2.1)
      if (rec.is_absent()) {
        // Blind delete: an absent write may target a key that never
        // existed here; kNotFound is the expected no-op, not an error.
        (void)store_->Delete(key);
      } else {
        store_->Upsert(key, std::move(rec));
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    results_.push_back(std::move(*result));
  }
}

}  // namespace tpart
