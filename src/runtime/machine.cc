#include "runtime/machine.h"

#include <algorithm>

#include <unordered_map>

#include "common/logging.h"
#include "exec/serial_executor.h"
#include "net/wire.h"
#include "txn/rw_set.h"

namespace tpart {

Machine::Machine(MachineId id, std::size_t num_machines, KvStore* store,
                 const ProcedureRegistry* registry, SendFn send,
                 SinkEpoch sticky_ttl, int executor_workers)
    : id_(id),
      num_machines_(num_machines),
      store_(store),
      registry_(registry),
      send_(std::move(send)),
      sticky_ttl_(sticky_ttl),
      storage_(store, sticky_ttl),
      executor_workers_(std::max(executor_workers, 1)) {}

Machine::~Machine() {
  if (executor_.joinable()) executor_.join();
  for (auto& t : worker_pool_) {
    if (t.joinable()) t.join();
  }
  if (service_.joinable()) {
    Deliver(Message{});  // kShutdown default
    service_.join();
  }
}

void Machine::SendOut(MachineId to, Message msg) {
  if (replay_) return;  // §5.4 replay is local
  send_(to, std::move(msg));
}

void Machine::EnqueueTPartEpoch(SinkEpoch epoch,
                                std::vector<PlanItem> items) {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    for (auto& item : items) {
      tpart_work_.emplace_back(epoch, std::move(item));
    }
  }
  work_cv_.notify_all();
}

void Machine::EnqueueCalvinTxn(TxnSpec spec) {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    calvin_work_.push_back(std::move(spec));
  }
  work_cv_.notify_one();
}

void Machine::FinishEnqueue() {
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    finished_enqueue_ = true;
  }
  work_cv_.notify_all();
}

void Machine::StartTPart() {
  service_running_ = true;
  service_ = std::thread([this] { ServiceLoop(); });
  executor_ = std::thread([this] { TPartWorkerLoop(); });
  for (int wkr = 1; wkr < executor_workers_; ++wkr) {
    worker_pool_.emplace_back([this] { TPartWorkerLoop(); });
  }
}

void Machine::StartCalvin() {
  service_running_ = true;
  service_ = std::thread([this] { ServiceLoop(); });
  executor_ = std::thread([this] { CalvinExecutorLoop(); });
}

void Machine::JoinExecutor() {
  if (executor_.joinable()) executor_.join();
  for (auto& t : worker_pool_) {
    if (t.joinable()) t.join();
  }
  worker_pool_.clear();
}

void Machine::Stop() {
  // Drain first: by the time a machine is stopped, every peer executor
  // has joined and the cluster has Flush()ed the transport, so all
  // in-flight messages already sit in the inbound queue; processing up
  // to the shutdown sentinel applies any remaining write-backs before
  // the storage front-end closes.
  if (service_.joinable()) {
    Message stop;
    stop.type = Message::Type::kShutdown;
    inbound_.Send(std::move(stop));
    service_.join();
  }
  cache_.Shutdown();
  storage_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(resp_mu_);
    resp_shutdown_ = true;
  }
  resp_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(peer_mu_);
    peer_shutdown_ = true;
  }
  peer_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(credit_mu_);
    credit_shutdown_ = true;
  }
  credit_cv_.notify_all();
  service_running_ = false;
}

std::vector<TxnResult> Machine::TakeResults() {
  std::lock_guard<std::mutex> lock(results_mu_);
  return std::move(results_);
}

// ---------------------------------------------------------------------
// Service thread
// ---------------------------------------------------------------------

void Machine::ServiceLoop() {
  while (true) {
    Message msg = inbound_.Receive();
    switch (msg.type) {
      case Message::Type::kShutdown:
        return;
      case Message::Type::kPushVersion:
        // The PUSH-log (§5.4): remember pushed values for local replay.
        if (!replay_) network_log_.push_back(msg);
        cache_.PutVersion(msg.key, msg.version, msg.dst_txn,
                          std::move(msg.value));
        break;
      case Message::Type::kCacheReadReq: {
        // Logged so replay re-serves the same reads and entry/version
        // refcounts line up (§5.4 local replay).
        if (!replay_) network_log_.push_back(msg);
        auto v = cache_.TryEpochEntry(msg.key, msg.version, msg.invalidate,
                                      msg.total_reads);
        if (v.has_value()) {
          Message resp;
          resp.type = Message::Type::kCacheReadResp;
          resp.req_id = msg.req_id;
          resp.value = std::move(*v);
          SendOut(msg.reply_to, std::move(resp));
        } else {
          parked_pulls_[{msg.key, msg.version}].push_back(std::move(msg));
        }
        break;
      }
      case Message::Type::kLocalPublish: {
        auto it = parked_pulls_.find({msg.key, msg.version});
        if (it != parked_pulls_.end()) {
          for (Message& req : it->second) {
            auto v = cache_.TryEpochEntry(req.key, req.version,
                                          req.invalidate, req.total_reads);
            TPART_CHECK(v.has_value())
                << "parked pull found no entry after publish";
            Message resp;
            resp.type = Message::Type::kCacheReadResp;
            resp.req_id = req.req_id;
            resp.value = std::move(*v);
            SendOut(req.reply_to, std::move(resp));
          }
          parked_pulls_.erase(it);
        }
        break;
      }
      case Message::Type::kCacheReadResp:
      case Message::Type::kStorageReadResp: {
        if (!replay_) network_log_.push_back(msg);
        {
          std::lock_guard<std::mutex> lock(resp_mu_);
          responses_[msg.req_id] = std::move(msg.value);
        }
        resp_cv_.notify_all();
        break;
      }
      case Message::Type::kStorageReadReq: {
        if (!replay_) network_log_.push_back(msg);
        const MachineId reply_to = msg.reply_to;
        const std::uint64_t req_id = msg.req_id;
        storage_.AsyncRead(msg.key, msg.version,
                           [this, reply_to, req_id](Record value) {
                             Message resp;
                             resp.type = Message::Type::kStorageReadResp;
                             resp.req_id = req_id;
                             resp.value = std::move(value);
                             SendOut(reply_to, std::move(resp));
                           });
        break;
      }
      case Message::Type::kWriteBackApply:
        if (!replay_) network_log_.push_back(msg);
        storage_.ApplyWriteBack(msg.key, msg.version, msg.replaces,
                                std::move(msg.value), msg.awaits, msg.sticky,
                                msg.epoch);
        break;
      case Message::Type::kPeerReads: {
        if (!replay_) network_log_.push_back(msg);
        {
          std::lock_guard<std::mutex> lock(peer_mu_);
          auto& bucket = peer_reads_[msg.txn];
          for (auto& [key, value] : msg.kvs) {
            bucket[key] = std::move(value);
          }
        }
        peer_cv_.notify_all();
        break;
      }
      // Streaming dissemination. Not network-logged: §5.4 replay re-runs
      // from the request log, which ExecutePlan populates either way.
      case Message::Type::kSinkPlan:
        HandleSinkPlan(std::move(msg));
        break;
      case Message::Type::kPlanStreamEnd:
        stream_end_seen_ = true;
        stream_final_epoch_ = msg.epoch;
        // The end marker can overtake delayed rounds on an unordered
        // transport; only finish once every round up to it is enqueued.
        if (next_stream_epoch_ > stream_final_epoch_) FinishEnqueue();
        break;
    }
  }
}

// ---------------------------------------------------------------------
// Streaming intake
// ---------------------------------------------------------------------

void Machine::HandleSinkPlan(Message msg) {
  Result<SinkPlan> plan = DecodeSinkPlan(msg.plan_bytes);
  TPART_CHECK(plan.ok()) << "bad sink plan on the wire: "
                         << plan.status().ToString();
  std::unordered_map<TxnId, TxnSpec> spec_of;
  spec_of.reserve(msg.specs.size());
  for (TxnSpec& spec : msg.specs) spec_of.emplace(spec.id, std::move(spec));

  std::vector<PlanItem> slice;
  for (TxnPlan& p : plan->txns) {
    if (p.machine != id_) continue;
    auto node = spec_of.extract(p.txn);
    TPART_CHECK(!node.empty()) << "round " << plan->epoch
                               << " plan for T" << p.txn << " has no spec";
    slice.push_back(PlanItem{std::move(p), std::move(node.mapped())});
  }

  TPART_CHECK(plan->epoch >= next_stream_epoch_ &&
              pending_stream_plans_.count(plan->epoch) == 0)
      << "duplicate streaming round " << plan->epoch;
  pending_stream_plans_.emplace(plan->epoch, std::move(slice));
  // Deliver in order; a reliable-but-unordered transport may have handed
  // us later rounds first.
  for (auto it = pending_stream_plans_.begin();
       it != pending_stream_plans_.end() && it->first == next_stream_epoch_;
       it = pending_stream_plans_.erase(it), ++next_stream_epoch_) {
    EnqueueStreamEpoch(it->first, std::move(it->second));
  }
  if (stream_end_seen_ && next_stream_epoch_ > stream_final_epoch_) {
    FinishEnqueue();
  }
}

void Machine::EnqueueStreamEpoch(SinkEpoch epoch,
                                 std::vector<PlanItem> items) {
  const bool empty = items.empty();
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    if (!empty) epoch_outstanding_[epoch] = items.size();
    for (auto& item : items) {
      tpart_work_.emplace_back(epoch, std::move(item));
    }
  }
  work_cv_.notify_all();
  // A round with no local slice holds its credit for no reason.
  if (empty) ReleaseEpochCredit();
}

void Machine::OnPlanItemDone(SinkEpoch epoch) {
  bool release = false;
  {
    std::lock_guard<std::mutex> lock(work_mu_);
    auto it = epoch_outstanding_.find(epoch);
    if (it != epoch_outstanding_.end() && --it->second == 0) {
      epoch_outstanding_.erase(it);
      release = true;
    }
  }
  if (release) ReleaseEpochCredit();
}

bool Machine::AcquireEpochCredit() {
  if (epoch_queue_capacity_ == 0) return false;  // unbounded
  std::unique_lock<std::mutex> lock(credit_mu_);
  bool waited = false;
  if (epochs_in_flight_ >= epoch_queue_capacity_ && !credit_shutdown_) {
    waited = true;
    credit_cv_.wait(lock, [&] {
      return epochs_in_flight_ < epoch_queue_capacity_ || credit_shutdown_;
    });
  }
  ++epochs_in_flight_;
  if (epochs_in_flight_ > epoch_high_water_) {
    epoch_high_water_ = epochs_in_flight_;
  }
  return waited;
}

void Machine::ReleaseEpochCredit() {
  if (epoch_queue_capacity_ == 0) return;
  {
    std::lock_guard<std::mutex> lock(credit_mu_);
    if (epochs_in_flight_ > 0) --epochs_in_flight_;
  }
  credit_cv_.notify_one();
}

std::size_t Machine::epoch_queue_high_water() const {
  std::lock_guard<std::mutex> lock(credit_mu_);
  return epoch_high_water_;
}

// ---------------------------------------------------------------------
// T-Part executor
// ---------------------------------------------------------------------

void Machine::TPartWorkerLoop() {
  // Workers pop plans in total order; the version-based CC makes the
  // outcome independent of which worker runs which plan (a read blocks
  // until its named version exists, produced by an earlier — hence
  // already-popped — transaction or a remote machine).
  while (true) {
    SinkEpoch epoch;
    PlanItem item;
    bool evict = false;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] {
        return !tpart_work_.empty() || finished_enqueue_;
      });
      if (tpart_work_.empty()) return;
      epoch = tpart_work_.front().first;
      item = std::move(tpart_work_.front().second);
      tpart_work_.pop_front();
      if (epoch > evicted_upto_) {
        evicted_upto_ = epoch;
        evict = true;
      }
    }
    if (evict) {
      cache_.EvictExpiredSticky(epoch > sticky_ttl_ ? epoch - sticky_ttl_
                                                    : 0);
    }
    ExecutePlan(epoch, item);
  }
}

void Machine::ExecutePlan(SinkEpoch epoch, const PlanItem& item) {
  const TxnPlan& p = item.plan;
  const TxnSpec& spec = item.spec;
  TPART_CHECK(p.machine == id_);
  // Request log: "the transaction requests are logged only after they are
  // partitioned, and each machine logs only those requests that are
  // assigned to itself" (§5.4). Entries may interleave across workers;
  // replay re-sorts by txn id.
  if (!replay_) {
    std::lock_guard<std::mutex> lock(log_mu_);
    request_log_.push_back(RequestLogEntry{epoch, item});
  }

  // ---- Gather every planned read (the version-based deterministic CC:
  // each read waits for its exact version, §5.2).
  std::unordered_map<ObjectKey, Record> values;
  struct PendingResp {
    ObjectKey key;
    std::uint64_t req_id;
  };
  std::vector<PendingResp> pending;
  // Request ids are deterministic functions of (txn, read position) so a
  // §5.4 replay pairs logged responses with re-issued requests no matter
  // how worker threads interleave.
  TPART_CHECK(p.reads.size() < 1024) << "read set too wide for req ids";
  std::uint32_t read_idx = 0;
  for (const ReadStep& r : p.reads) {
    const std::uint64_t req_id = (p.txn << 10) | read_idx++;
    switch (r.kind) {
      case ReadSourceKind::kLocalVersion:
      case ReadSourceKind::kPush: {
        auto v = cache_.AwaitVersion(r.key, r.src_txn, p.txn);
        values[r.key] = v.has_value() ? std::move(*v) : Record::Absent();
        break;
      }
      case ReadSourceKind::kCacheLocal: {
        auto v = cache_.AwaitEpochEntry(r.key, r.src_txn,
                                        r.invalidate_entry,
                                        r.entry_total_reads);
        values[r.key] = v.has_value() ? std::move(*v) : Record::Absent();
        break;
      }
      case ReadSourceKind::kCacheRemote: {
        Message req;
        req.type = Message::Type::kCacheReadReq;
        req.key = r.key;
        req.version = r.src_txn;
        req.invalidate = r.invalidate_entry;
        req.total_reads = r.entry_total_reads;
        req.reply_to = id_;
        req.req_id = req_id;
        SendOut(r.src_machine, std::move(req));
        pending.push_back(PendingResp{r.key, req_id});
        break;
      }
      case ReadSourceKind::kStorage: {
        if (r.src_machine == id_) {
          values[r.key] = storage_.BlockingRead(r.key, r.src_txn);
        } else {
          Message req;
          req.type = Message::Type::kStorageReadReq;
          req.key = r.key;
          req.version = r.src_txn;
          req.reply_to = id_;
          req.req_id = req_id;
          SendOut(r.src_machine, std::move(req));
          pending.push_back(PendingResp{r.key, req_id});
        }
        break;
      }
    }
  }
  for (auto& pr : pending) {
    values[pr.key] = AwaitResponse(pr.req_id);
  }

  // ---- Execute the stored procedure.
  GatheredTxnContext ctx(&spec, std::move(values));
  Result<TxnResult> result = RunProcedure(*registry_, spec, ctx);
  TPART_CHECK(result.ok()) << "engine failure executing T" << p.txn << ": "
                           << result.status().ToString();
  const bool committed = result->committed;

  // ---- Outbound plan steps. An aborted transaction forwards the values
  // it read (§5.3), which OutgoingValue() encapsulates.
  for (const PushStep& s : p.pushes) {
    Message m;
    m.type = Message::Type::kPushVersion;
    m.key = s.key;
    m.version = s.version_txn;
    m.dst_txn = s.dst_txn;
    m.value = ctx.OutgoingValue(s.key, committed);
    SendOut(s.dst_machine, std::move(m));
  }
  for (const LocalVersionStep& s : p.local_versions) {
    cache_.PutVersion(s.key, s.version_txn, s.dst_txn,
                      ctx.OutgoingValue(s.key, committed));
  }
  for (const CachePublishStep& s : p.cache_publishes) {
    cache_.PublishEpochEntry(s.key, p.txn, s.epoch,
                             ctx.OutgoingValue(s.key, committed));
    Message note;
    note.type = Message::Type::kLocalPublish;
    note.key = s.key;
    note.version = p.txn;
    inbound_.Send(std::move(note));  // wake parked remote pulls
  }
  for (const WriteBackStep& s : p.write_backs) {
    Record value = ctx.OutgoingValue(s.key, committed);
    if (s.home == id_) {
      storage_.ApplyWriteBack(s.key, s.version_txn, s.replaces_version,
                              std::move(value), s.readers_to_await,
                              s.make_sticky, epoch);
    } else {
      Message m;
      m.type = Message::Type::kWriteBackApply;
      m.key = s.key;
      m.version = s.version_txn;
      m.replaces = s.replaces_version;
      m.value = std::move(value);
      m.awaits = s.readers_to_await;
      m.sticky = s.make_sticky;
      m.epoch = epoch;
      SendOut(s.home, std::move(m));
    }
  }

  {
    std::lock_guard<std::mutex> lock(results_mu_);
    results_.push_back(std::move(*result));
  }
  if (commit_hook_) commit_hook_(p.txn);
  OnPlanItemDone(epoch);
}

Record Machine::AwaitResponse(std::uint64_t req_id) {
  std::unique_lock<std::mutex> lock(resp_mu_);
  resp_cv_.wait(lock, [&] {
    return resp_shutdown_ || responses_.count(req_id) > 0;
  });
  auto it = responses_.find(req_id);
  if (it == responses_.end()) return Record::Absent();
  Record v = std::move(it->second);
  responses_.erase(it);
  return v;
}

// ---------------------------------------------------------------------
// Calvin executor
// ---------------------------------------------------------------------

void Machine::CalvinExecutorLoop() {
  while (true) {
    TxnSpec spec;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] {
        return !calvin_work_.empty() || finished_enqueue_;
      });
      if (calvin_work_.empty()) return;
      spec = std::move(calvin_work_.front());
      calvin_work_.pop_front();
    }
    ExecuteCalvin(spec);
  }
}

void Machine::ExecuteCalvin(const TxnSpec& spec) {
  // Calvin (§2.1): read local footprint, push to peers, wait for peers'
  // reads, execute the full procedure, write local keys.
  const std::vector<ObjectKey> all_keys = spec.rw.AllKeys();
  std::vector<MachineId> participants;
  std::vector<ObjectKey> remote_keys;
  std::unordered_map<ObjectKey, Record> values;
  std::vector<std::pair<ObjectKey, Record>> local_kvs;
  for (const ObjectKey k : all_keys) {
    const MachineId home = locate_(k);
    if (std::find(participants.begin(), participants.end(), home) ==
        participants.end()) {
      participants.push_back(home);
    }
    if (home == id_) {
      Result<Record> r = store_->Read(k);
      Record value = r.ok() ? std::move(*r) : Record::Absent();
      local_kvs.emplace_back(k, value);
      values.emplace(k, std::move(value));
    } else {
      remote_keys.push_back(k);
    }
  }

  for (const MachineId peer : participants) {
    if (peer == id_) continue;
    Message m;
    m.type = Message::Type::kPeerReads;
    m.txn = spec.id;
    m.kvs = local_kvs;
    SendOut(peer, std::move(m));
  }

  if (!remote_keys.empty()) {
    std::unique_lock<std::mutex> lock(peer_mu_);
    peer_cv_.wait(lock, [&] {
      if (peer_shutdown_) return true;
      auto it = peer_reads_.find(spec.id);
      if (it == peer_reads_.end()) return false;
      for (const ObjectKey k : remote_keys) {
        if (it->second.count(k) == 0) return false;
      }
      return true;
    });
    auto it = peer_reads_.find(spec.id);
    if (it != peer_reads_.end()) {
      for (auto& [key, value] : it->second) {
        values[key] = std::move(value);
      }
      peer_reads_.erase(it);
    }
  }

  GatheredTxnContext ctx(&spec, std::move(values));
  Result<TxnResult> result = RunProcedure(*registry_, spec, ctx);
  TPART_CHECK(result.ok()) << "engine failure executing T" << spec.id
                           << ": " << result.status().ToString();
  if (result->committed) {
    for (auto& [key, rec] : ctx.writes()) {
      if (locate_(key) != id_) continue;  // "local write" (§2.1)
      if (rec.is_absent()) {
        (void)store_->Delete(key);
      } else {
        store_->Upsert(key, std::move(rec));
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    results_.push_back(std::move(*result));
  }
}

}  // namespace tpart
