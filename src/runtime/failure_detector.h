#ifndef TPART_RUNTIME_FAILURE_DETECTOR_H_
#define TPART_RUNTIME_FAILURE_DETECTOR_H_

// Phi-accrual failure detection (Hayashibara et al.): instead of a
// binary fixed-deadline verdict, each machine carries a continuous
// suspicion level
//
//   phi(elapsed) = -log10( P(next heartbeat later than elapsed) )
//
// computed from a sliding window of observed heartbeat inter-arrival
// times, P modeled as a normal tail. A machine whose heartbeats are
// merely slow (a straggler sleeping in its service loop, a gray-failure
// slow link inflating latency) grows its observed mean/std, so the same
// silence that would trip a fixed deadline yields a low phi — no
// false-positive recovery. A crash-stopped machine's silence keeps
// growing against a finite distribution, so phi rises without bound and
// crosses any threshold.
//
// The cluster watchdog owns one instance; it is not thread-safe.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace tpart {

class PhiAccrualDetector {
 public:
  struct Options {
    /// Inter-arrival samples kept per machine (sliding window).
    std::size_t history = 64;
    /// Suspicion level that corroborates a deadline expiry. 8 means
    /// "the chance a live machine is this late is < 1e-8".
    double phi_threshold = 8.0;
    /// Std-deviation floor (us): keeps phi finite when the observed
    /// inter-arrivals are nearly constant (in-process heartbeats jitter
    /// by microseconds, which would make any hiccup look fatal).
    double min_std_us = 0.0;  // 0 = max(expected/4, 200)
    /// Seed mean before real samples arrive: the probe interval.
    std::uint64_t expected_interval_us = 1000;
  };

  explicit PhiAccrualDetector(std::size_t num_machines, Options options);

  /// Heartbeat progress for `machine` observed `now_us` on the
  /// watchdog's monotonic clock: records the inter-arrival since the
  /// previous progress and resets the silence clock.
  void Observe(std::size_t machine, std::uint64_t now_us);

  /// Current suspicion level for `machine` at `now_us`. 0 while the
  /// silence is shorter than the observed mean.
  double Phi(std::size_t machine, std::uint64_t now_us) const;

  /// Microseconds of silence for `machine` as of `now_us`.
  std::uint64_t SilenceUs(std::size_t machine, std::uint64_t now_us) const;

  /// Excuses the current silence (recovery restart, or an injected link
  /// fault the watchdog knows severed the heartbeat path): resets the
  /// silence clock without recording a sample, so explained outages
  /// neither raise suspicion nor pollute the inter-arrival history.
  void Excuse(std::size_t machine, std::uint64_t now_us);

  /// Drops `machine`'s history entirely (post-recovery: the rebuilt
  /// machine's timing regime may differ from its pre-crash one).
  void Reset(std::size_t machine, std::uint64_t now_us);

  /// One-line per-machine state ("m0 phi=0.2 mean_us=1003 ...") for
  /// stall diagnostics and post-mortems.
  std::string Describe(std::uint64_t now_us) const;

  std::size_t num_machines() const { return states_.size(); }

 private:
  struct State {
    std::vector<std::uint64_t> window;  // ring of inter-arrivals, us
    std::size_t next = 0;               // ring write position
    std::size_t count = 0;              // samples held (<= window size)
    std::uint64_t last_progress_us = 0;
    bool excused = true;  // next Observe resets baseline, no sample
  };

  void MeanStd(const State& s, double* mean, double* std) const;

  Options options_;
  std::vector<State> states_;
};

}  // namespace tpart

#endif  // TPART_RUNTIME_FAILURE_DETECTOR_H_
