#include "runtime/recovery.h"

#include <algorithm>
#include <limits>
#include <map>

namespace tpart {

namespace {

/// Shared tail of both replay formulations: re-enqueue the logged plans
/// grouped by sinking round in total order (a multi-worker live run may
/// have logged them interleaved), run the executor to completion, and
/// collect results.
void RunReplay(Machine& machine,
               const std::vector<Machine::RequestLogEntry>& request_log,
               ReplayResult& out) {
  std::map<SinkEpoch, std::vector<Machine::PlanItem>> rounds;
  for (const auto& entry : request_log) {
    rounds[entry.epoch].push_back(entry.item);
  }
  machine.StartTPart();
  for (auto& [epoch, items] : rounds) {
    std::sort(items.begin(), items.end(),
              [](const Machine::PlanItem& a, const Machine::PlanItem& b) {
                return a.plan.txn < b.plan.txn;
              });
    machine.EnqueueTPartEpoch(epoch, std::move(items));
  }
  machine.FinishEnqueue();
  machine.JoinExecutor();
  out.results = machine.TakeResults();
  machine.Stop();
}

}  // namespace

ReplayResult ReplayMachine(
    const Workload& workload, MachineId id,
    const std::vector<Machine::RequestLogEntry>& request_log,
    const std::vector<Message>& network_log, SinkEpoch sticky_ttl) {
  ReplayResult out;
  // Checkpoint: reload the initial database (a real deployment would read
  // the latest checkpoint / fetch a replica snapshot; the log replay on
  // top is identical).
  out.store = std::make_unique<PartitionedStore>(
      workload.num_machines, workload.partition_map,
      /*maintain_ordered_index=*/true);
  workload.loader(*out.store);

  Machine machine(id, workload.num_machines, &out.store->store(id),
                  workload.procedures.get(),
                  [](MachineId, Message) { /* outbound suppressed */ },
                  sticky_ttl);
  machine.set_replay(true);

  // Pre-deliver the logged inbound traffic; parking in the cache and the
  // storage service makes delivery order irrelevant.
  for (const Message& msg : network_log) {
    machine.Deliver(msg);
  }
  RunReplay(machine, request_log, out);
  return out;
}

ReplayResult ReplayMachine(
    const Workload& workload, MachineId id, MachineCheckpoint& checkpoint,
    const std::vector<Machine::RequestLogEntry>& request_log_suffix,
    const std::vector<Message>& network_log_suffix, SinkEpoch sticky_ttl) {
  ReplayResult out;
  out.store = std::make_unique<PartitionedStore>(
      workload.num_machines, workload.partition_map,
      /*maintain_ordered_index=*/true);
  workload.loader(*out.store);

  // Replace the loaded partition with the checkpointed records: every
  // write-back up to the capture epoch is already folded in, so the log
  // suffix is all that remains to replay.
  KvStore& store = out.store->store(id);
  std::vector<ObjectKey> keys;
  keys.reserve(store.size());
  store.Scan(0, std::numeric_limits<ObjectKey>::max(),
             [&](ObjectKey key, const Record&) { keys.push_back(key); });
  for (const ObjectKey key : keys) {
    (void)store.Delete(key);
  }
  checkpoint.records.Checkpoint(
      [&](ObjectKey key, const Record& value) { store.Upsert(key, value); });

  Machine machine(id, workload.num_machines, &store,
                  workload.procedures.get(),
                  [](MachineId, Message) { /* outbound suppressed */ },
                  sticky_ttl);
  machine.set_replay(true);
  // Volatile state as of the capture: cache entries, storage-service
  // parking, and in-flight pulls re-enter through the normal paths.
  machine.InstallCheckpoint(checkpoint);

  for (const Message& msg : network_log_suffix) {
    machine.Deliver(msg);
  }
  RunReplay(machine, request_log_suffix, out);
  return out;
}

}  // namespace tpart
