#include "runtime/recovery.h"

#include <algorithm>
#include <map>

namespace tpart {

ReplayResult ReplayMachine(
    const Workload& workload, MachineId id,
    const std::vector<Machine::RequestLogEntry>& request_log,
    const std::vector<Message>& network_log, SinkEpoch sticky_ttl) {
  ReplayResult out;
  // Checkpoint: reload the initial database (a real deployment would read
  // the latest checkpoint / fetch a replica snapshot; the log replay on
  // top is identical).
  out.store = std::make_unique<PartitionedStore>(
      workload.num_machines, workload.partition_map,
      /*maintain_ordered_index=*/true);
  workload.loader(*out.store);

  Machine machine(id, workload.num_machines, &out.store->store(id),
                  workload.procedures.get(),
                  [](MachineId, Message) { /* outbound suppressed */ },
                  sticky_ttl);
  machine.set_replay(true);

  // Pre-deliver the logged inbound traffic; parking in the cache and the
  // storage service makes delivery order irrelevant.
  for (const Message& msg : network_log) {
    machine.Deliver(msg);
  }

  // Re-enqueue the logged plans grouped by sinking round, in total order
  // (a multi-worker live run may have logged them interleaved).
  std::map<SinkEpoch, std::vector<Machine::PlanItem>> rounds;
  for (const auto& entry : request_log) {
    rounds[entry.epoch].push_back(entry.item);
  }
  machine.StartTPart();
  for (auto& [epoch, items] : rounds) {
    std::sort(items.begin(), items.end(),
              [](const Machine::PlanItem& a, const Machine::PlanItem& b) {
                return a.plan.txn < b.plan.txn;
              });
    machine.EnqueueTPartEpoch(epoch, std::move(items));
  }
  machine.FinishEnqueue();
  machine.JoinExecutor();
  out.results = machine.TakeResults();
  machine.Stop();
  return out;
}

}  // namespace tpart
