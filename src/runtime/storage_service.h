#ifndef TPART_RUNTIME_STORAGE_SERVICE_H_
#define TPART_RUNTIME_STORAGE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "common/flat_map.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/kv_store.h"
#include "storage/write_back_log.h"

namespace tpart {

/// Home-machine storage front-end implementing T-Part's storage-side
/// version discipline:
///  * every record carries the tag of the transaction whose write-back
///    produced it (0 = initial load);
///  * a read names the exact tag it must observe (ReadStep::src_txn) and
///    parks until that version is current;
///  * a write-back parks until (a) all earlier write-backs for the key
///    applied, and (b) its `awaits` count of reads of the previous version
///    have been served — so concurrent sinking rounds on different
///    machines can never overtake each other on storage.
/// Write-backs are the only storage writes and are UNDO-logged (§5.4);
/// applied values also feed the sticky cache (§5.2).
class StorageService {
 public:
  StorageService(KvStore* store, SinkEpoch sticky_ttl = 2)
      : store_(store), sticky_ttl_(sticky_ttl) {}

  using ReadDone = std::function<void(Record)>;

  /// Identity of the remote requester behind a parked read. A read that
  /// carries a tag can be reconstructed after a crash (the reply callback
  /// is rebuilt from the tag); untagged reads are local-executor waits and
  /// never survive a checkpoint (the executor is quiescent at capture).
  struct RemoteReadTag {
    MachineId reply_to = kInvalidMachine;
    std::uint64_t req_id = 0;
  };

  /// Serves (possibly later) the version of `key` tagged
  /// `expected_version`. `done` may run inline or from a later
  /// ApplyWriteBack call on another thread; it must be lightweight.
  /// `remote` identifies a remote requester (see RemoteReadTag).
  void AsyncRead(ObjectKey key, TxnId expected_version, ReadDone done,
                 std::optional<RemoteReadTag> remote = std::nullopt);

  /// Blocking wrapper for the local executor.
  Record BlockingRead(ObjectKey key, TxnId expected_version);

  /// Deadline-aware blocking read: kUnavailable when `expected_version`
  /// does not materialise within `timeout` (e.g. the producing machine
  /// crashed), instead of hanging forever. A timeout of zero waits
  /// forever. The parked read may still be served later; its value is
  /// discarded.
  [[nodiscard]] Result<Record> BlockingReadFor(
      ObjectKey key, TxnId expected_version,
      std::chrono::microseconds timeout);

  /// Applies (or parks) the write-back of `version` of `key`, which
  /// replaces storage version `replaces` (strict replacement order).
  void ApplyWriteBack(ObjectKey key, TxnId version, TxnId replaces,
                      Record value, std::uint32_t awaits, bool sticky,
                      SinkEpoch epoch);

  /// Releases blocked readers (machine shutdown); they observe
  /// Record::Absent().
  void Shutdown();

  /// Crash-recovery wipe: forgets every version gate, parked read and
  /// parked write-back and re-opens a previously Shutdown() service. The
  /// underlying KvStore is restored separately (checkpoint); replaying
  /// the request/network logs rebuilds the version discipline from the
  /// initial state, exactly like a fresh machine. Cumulative counters
  /// (reads served, write-backs applied) are deliberately kept.
  void Reset();

  /// Checkpoint image of the version discipline: per-key current tag,
  /// read counts, sticky state, parked write-backs (as plain data), and
  /// parked *remote* reads (as reconstruction tags). Captured at a
  /// quiescent epoch boundary; any untagged (local-executor) parked read
  /// at capture time is a bug and CHECK-fails.
  struct Image {
    struct ParkedWbImage {
      TxnId version;
      TxnId replaces;
      Record value;
      std::uint32_t awaits;
      bool sticky;
      SinkEpoch epoch;
    };
    struct ParkedRemoteRead {
      TxnId expected;
      RemoteReadTag tag;
    };
    struct KeyImage {
      ObjectKey key;
      TxnId current;
      std::uint32_t reads_served_since_wb;
      bool has_sticky;
      SinkEpoch sticky_expire;
      std::vector<ParkedWbImage> parked_wbs;
      std::vector<ParkedRemoteRead> parked_remote_reads;
    };
    std::vector<KeyImage> keys;
  };

  Image Capture() const;

  /// Rebuilds a ReadDone reply callback from a RemoteReadTag at restore.
  using MakeRemoteDone = std::function<ReadDone(const RemoteReadTag&)>;

  /// Replaces the version-discipline state with `image` and re-opens the
  /// service; parked remote reads get fresh callbacks via `make_done`.
  /// Cumulative counters are kept, mirroring Reset().
  void Restore(const Image& image, const MakeRemoteDone& make_done);

  /// Drains the set of keys written back since the last call (the dirty
  /// set for an incremental checkpoint pass).
  std::vector<ObjectKey> TakeDirtyKeys();

  /// Per-key migration state, extracted from a quiesced source machine.
  struct MigratedKeyState {
    ObjectKey key = 0;
    TxnId current = kInvalidTxnId;
    std::uint32_t reads_served_since_wb = 0;
    bool has_sticky = false;
    SinkEpoch sticky_expire = 0;
  };

  /// Keys with any version-discipline state (sorted). The migration
  /// control plane unions this with the store's keys so moved keys whose
  /// record was deleted still carry their current-version tag across.
  std::vector<ObjectKey> StateKeys() const;

  /// Removes and returns the version-discipline state of `keys` (elastic
  /// migration source side, at a quiesced barrier: parked reads and
  /// parked write-backs for moved keys must be empty — CHECK). Keys with
  /// no state entry are skipped; they carry default state on both sides.
  std::vector<MigratedKeyState> ExtractKeys(const std::vector<ObjectKey>& keys);

  /// Installs migrated key state (elastic migration target side) and
  /// marks each key dirty so the next checkpoint pass folds it in.
  void InstallKeys(const std::vector<MigratedKeyState>& keys);

  /// Marks keys dirty without touching their state: migration mutates
  /// store records directly (deletes at the source, upserts at the
  /// target), and the post-migration forced checkpoint must fold those
  /// mutations even for keys that never had version-discipline state.
  void MarkDirty(const std::vector<ObjectKey>& keys);

  const WriteBackLog& write_back_log() const { return wb_log_; }
  std::uint64_t sticky_hits() const;
  std::uint64_t reads_served() const;
  std::uint64_t write_backs_applied() const;

 private:
  struct ParkedRead {
    TxnId expected;
    ReadDone done;
    std::optional<RemoteReadTag> remote;
  };
  struct ParkedWb {
    TxnId version;
    TxnId replaces;
    Record value;
    std::uint32_t awaits;
    bool sticky;
    SinkEpoch epoch;
  };
  struct KeyState {
    TxnId current = kInvalidTxnId;  // 0 = initial version
    std::uint32_t reads_served_since_wb = 0;
    std::vector<ParkedRead> parked_reads;
    // A write-back applies only when the version it replaces is current.
    // At most a handful park per key, so a flat vector (linear search on
    // `replaces`) beats a node-based map; Capture() sorts by `replaces`
    // to keep checkpoint images byte-identical to the old map order.
    std::vector<ParkedWb> parked_wbs;
    // Sticky copy of the current version (§5.2).
    bool has_sticky = false;
    SinkEpoch sticky_expire = 0;
  };

  // mu_ held; returns callbacks to run after unlock.
  void DrainKeyLocked(ObjectKey key, KeyState& st,
                      std::vector<std::pair<ReadDone, Record>>& ready);
  Record CurrentValueLocked(ObjectKey key, const KeyState& st);

  mutable std::mutex mu_;
  bool shutdown_ = false;
  KvStore* store_;
  SinkEpoch sticky_ttl_;
  FlatMap<ObjectKey, KeyState> keys_;
  // Keys written back since the last TakeDirtyKeys() (write-backs are the
  // only storage writes, so this is the full dirty set). FlatMap-as-set:
  // the value byte is unused.
  FlatMap<ObjectKey, char> dirty_keys_;
  WriteBackLog wb_log_;
  SinkEpoch next_log_batch_ = 0;
  std::uint64_t sticky_hits_ = 0;
  std::uint64_t reads_served_total_ = 0;
  std::uint64_t write_backs_applied_ = 0;
};

}  // namespace tpart

#endif  // TPART_RUNTIME_STORAGE_SERVICE_H_
