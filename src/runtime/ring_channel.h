#ifndef TPART_RUNTIME_RING_CHANNEL_H_
#define TPART_RUNTIME_RING_CHANNEL_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "common/status.h"

namespace tpart {

/// Bounded single-producer / single-consumer lock-free ring. The
/// building block of the hot-path queueing layer: one cache-line-padded
/// index per side, acquire/release publication, no mutex anywhere.
/// Exactly one thread may call TryPush and exactly one may call TryPop.
template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (min 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    buf_ = std::make_unique<T[]>(cap);
  }

  /// False when full (the caller decides how to back off).
  bool TryPush(T&& v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false;
    }
    buf_[head & mask_] = std::move(v);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// False when empty.
  bool TryPop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = std::move(buf_[tail & mask_]);
    buf_[tail & mask_] = T();  // release held resources eagerly
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }
  /// Approximate (racy) occupancy; exact when both sides are quiescent.
  std::size_t size() const {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return h - t;
  }

 private:
  std::unique_ptr<T[]> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer-owned
  alignas(64) std::size_t cached_tail_ = 0;       // producer-local
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer-owned
  alignas(64) std::size_t cached_head_ = 0;       // consumer-local
};

/// Bounded multi-producer / single-consumer ring (Vyukov-style per-slot
/// sequence numbers). Producers CAS a ticket, then publish their slot
/// independently; the consumer observes slots in ticket order, so the
/// queue is FIFO per producer and linearizable overall.
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  /// False when full. Safe from any number of threads.
  bool TryPush(T&& v) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          s.val = std::move(v);
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// False when empty (or when the next slot in ticket order is still
  /// being written — the consumer retries, preserving FIFO). Single
  /// consumer only.
  bool TryPop(T& out) {
    const std::size_t pos = tail_;
    Slot& s = slots_[pos & mask_];
    const std::size_t seq = s.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(pos + 1) < 0) {
      return false;
    }
    out = std::move(s.val);
    s.val = T();
    s.seq.store(pos + mask_ + 1, std::memory_order_release);
    tail_ = pos + 1;
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }
  /// Approximate (racy) occupancy.
  std::size_t size() const {
    const std::size_t h = head_.load(std::memory_order_acquire);
    return h - tail_;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T val{};
  };
  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::size_t tail_ = 0;  // consumer-owned, unshared
};

/// The machine-facing inbound queue: an MPSC ring on the fast path with
/// the BlockingQueue semantics preserved on top —
///  * unbounded: a full ring spills into a mutex-protected overflow
///    deque instead of blocking the producer (the direct transport
///    delivers synchronously from peer service threads, so a blocking
///    bounded queue could deadlock a cycle of full machines);
///  * blocking consumer: Receive parks on a condition variable exactly
///    like BlockingQueue, so stall diagnostics and ReceiveFor timeouts
///    behave identically;
///  * FIFO per producer: ring tickets are claimed in order, and once a
///    producer spills, every later send spills too until the consumer
///    has drained the overflow — a later message can never overtake an
///    earlier one from the same producer.
///
/// The fast path (ring push, awake consumer) takes no lock and performs
/// no allocation.
template <typename T>
class RingChannel {
 public:
  explicit RingChannel(std::size_t ring_capacity = 1024)
      : ring_(ring_capacity) {}

  /// Enqueues `msg`; never blocks. Returns true when the send spilled to
  /// the overflow deque (the bounded-queue "had to wait" analogue, kept
  /// for backpressure accounting).
  bool Send(T msg) {
    bool spilled = false;
    if (overflow_active_.load(std::memory_order_acquire) ||
        !ring_.TryPush(std::move(msg))) {
      std::lock_guard<std::mutex> lock(mu_);
      overflow_.push_back(std::move(msg));
      overflow_active_.store(true, std::memory_order_release);
      spills_.fetch_add(1, std::memory_order_relaxed);
      spilled = true;
    }
    count_.fetch_add(1, std::memory_order_acq_rel);
    NoteHighWater();
    // Dekker handshake with the consumer: order the enqueue above before
    // the sleep-flag read, as the consumer orders its sleep-flag write
    // before its final empty-check. At least one side then sees the
    // other: either we notify, or the consumer's predicate finds the
    // message and never blocks.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (sleeping_.load(std::memory_order_relaxed)) {
      // Synchronize on the mutex so the wakeup cannot slip between the
      // consumer's predicate check and its wait, then notify.
      { std::lock_guard<std::mutex> lock(mu_); }
      cv_.notify_one();
    }
    return spilled;
  }

  /// Blocks for the next message. Single consumer only.
  T Receive() {
    T out;
    if (TryPopFast(out)) return out;
    std::unique_lock<std::mutex> lock(mu_);
    MarkSleeping();
    cv_.wait(lock, [&] { return PopLocked(out); });
    sleeping_.store(false, std::memory_order_relaxed);
    return out;
  }

  /// Deadline-aware variant mirroring BlockingQueue::ReceiveFor: waits at
  /// most `timeout` (zero = forever) against an absolute deadline, so
  /// spurious wakeups cannot stretch the total wait.
  [[nodiscard]] Result<T> ReceiveFor(std::chrono::microseconds timeout) {
    T out;
    if (TryPopFast(out)) return out;
    std::unique_lock<std::mutex> lock(mu_);
    MarkSleeping();
    if (timeout.count() <= 0) {
      cv_.wait(lock, [&] { return PopLocked(out); });
    } else {
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      if (!cv_.wait_until(lock, deadline, [&] { return PopLocked(out); })) {
        sleeping_.store(false, std::memory_order_relaxed);
        return Status::Unavailable("channel receive timed out");
      }
    }
    sleeping_.store(false, std::memory_order_relaxed);
    return out;
  }

  /// Non-blocking variant. Single consumer only.
  std::optional<T> TryReceive() {
    T out;
    if (TryPopFast(out)) return out;
    return std::nullopt;
  }

  std::size_t size() const {
    return count_.load(std::memory_order_acquire);
  }

  /// Largest queue depth ever observed (approximate under concurrency,
  /// like the count it samples).
  std::size_t high_water() const {
    return high_water_.load(std::memory_order_acquire);
  }

  /// Sends that overflowed the ring onto the locked spill deque. A
  /// nonzero value means the fixed ring was undersized for some burst —
  /// still correct, but each spilled message paid for a mutex.
  std::uint64_t overflow_spills() const {
    return spills_.load(std::memory_order_relaxed);
  }

 private:
  /// Consumer-side dequeue, lock NOT held: ring first (older messages —
  /// once the overflow activates the ring stops growing), then the
  /// overflow deque under the lock.
  bool TryPopFast(T& out) {
    if (PopRing(out)) return true;
    if (overflow_active_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(mu_);
      return PopLockedTail(out);
    }
    return false;
  }

  /// Consumer-side dequeue with mu_ held (the cv wait predicate).
  bool PopLocked(T& out) {
    if (PopRing(out)) return true;
    return PopLockedTail(out);
  }

  /// Overflow half of the dequeue; requires mu_. Re-checks the ring
  /// first: a message published there just before a concurrent spill
  /// activated the overflow must still be consumed ahead of the spill.
  bool PopLockedTail(T& out) {
    if (PopRing(out)) return true;
    if (overflow_.empty()) return false;
    out = std::move(overflow_.front());
    overflow_.pop_front();
    if (overflow_.empty()) {
      overflow_active_.store(false, std::memory_order_release);
    }
    count_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }

  bool PopRing(T& out) {
    if (!ring_.TryPop(out)) return false;
    count_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }

  /// Consumer half of the Dekker handshake (see Send): publish the sleep
  /// flag before the predicate's final empty-check.
  void MarkSleeping() {
    sleeping_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void NoteHighWater() {
    const std::size_t n = count_.load(std::memory_order_acquire);
    std::size_t hw = high_water_.load(std::memory_order_relaxed);
    while (n > hw && !high_water_.compare_exchange_weak(
                         hw, n, std::memory_order_relaxed)) {
    }
  }

  MpscRing<T> ring_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::uint64_t> spills_{0};
  std::atomic<bool> overflow_active_{false};
  std::atomic<bool> sleeping_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> overflow_;
};

}  // namespace tpart

#endif  // TPART_RUNTIME_RING_CHANNEL_H_
