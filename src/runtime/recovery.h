#ifndef TPART_RUNTIME_RECOVERY_H_
#define TPART_RUNTIME_RECOVERY_H_

#include <memory>
#include <vector>

#include "runtime/machine.h"
#include "storage/partitioned_store.h"
#include "workload/workload.h"

namespace tpart {

/// Outcome of replaying one machine from its logs (§5.4).
struct ReplayResult {
  /// Fully reloaded cluster store; only partition `machine` was replayed.
  std::unique_ptr<PartitionedStore> store;
  std::vector<TxnResult> results;
};

/// §5.4 local replay: "the transaction requests are logged only after
/// they are partitioned, and each machine logs only those requests that
/// are assigned to itself. Furthermore, T-Part requires each executor to
/// create a PUSH-log upon receiving a push ... Therefore, each machine in
/// T-Part can replay its transactions locally during the recovery."
///
/// Reconstructs machine `id` from a checkpoint (the initial load) plus
/// its request log and network log (the PUSH-log generalised to every
/// inbound message, so storage-read/cache-pull refcounts line up), with
/// all outbound traffic suppressed. The caller compares the rebuilt
/// partition against the pre-crash store.
///
/// This is the *offline* formulation: a fresh store, no peers, no
/// cluster. The in-run path — crash-stop a live machine mid-stream,
/// detect it via heartbeats, rebuild it in place and let the run
/// complete — is Machine::Recover() driven by LocalCluster's watchdog
/// (LocalClusterOptions::crash / ::detector). Both replay the same two
/// logs; Recover() additionally restores the partition from the
/// load-time zig-zag checkpoint and rejoins the live epoch stream.
ReplayResult ReplayMachine(
    const Workload& workload, MachineId id,
    const std::vector<Machine::RequestLogEntry>& request_log,
    const std::vector<Message>& network_log, SinkEpoch sticky_ttl = 2);

/// Checkpoint-accelerated offline replay: reconstructs machine `id` from
/// a mid-run MachineCheckpoint (partition records + volatile cache /
/// storage-service state captured at a quiescent epoch boundary) plus
/// only the log *suffix* recorded after that capture. Must produce
/// byte-identical results and final partition state to the full-log
/// overload above — replay work is O(epochs since the checkpoint)
/// instead of O(run length). A never-captured checkpoint (epoch() == 0)
/// degrades to the full-log formulation: the seeded records are the
/// loaded database and the suffix is the whole log.
ReplayResult ReplayMachine(
    const Workload& workload, MachineId id, MachineCheckpoint& checkpoint,
    const std::vector<Machine::RequestLogEntry>& request_log_suffix,
    const std::vector<Message>& network_log_suffix, SinkEpoch sticky_ttl = 2);

}  // namespace tpart

#endif  // TPART_RUNTIME_RECOVERY_H_
