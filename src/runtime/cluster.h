#ifndef TPART_RUNTIME_CLUSTER_H_
#define TPART_RUNTIME_CLUSTER_H_

#include <memory>
#include <vector>

#include "metrics/run_stats.h"
#include "net/transport.h"
#include "runtime/machine.h"
#include "scheduler/tpart_scheduler.h"
#include "sequencer/sequencer.h"
#include "storage/partitioned_store.h"
#include "workload/workload.h"

namespace tpart {

/// Stage bounds for the streaming pipeline (RunTPart with streaming=true):
/// admission → scheduler → dissemination → execution run as concurrent
/// stages connected by bounded queues, so a full stage backpressures its
/// upstream instead of buffering without limit.
struct PipelineOptions {
  /// Admission-stage batching (batch size, dummy padding §3.3).
  Sequencer::Options sequencer;
  /// Ordered batches buffered between admission and the scheduler.
  std::size_t batch_queue_capacity = 4;
  /// Sunk plans buffered between the scheduler and dissemination.
  std::size_t plan_queue_capacity = 4;
  /// Sinking rounds in flight per machine: disseminated but not fully
  /// executed. Dissemination blocks past this, which is how slow
  /// executors throttle the scheduler. 0 = unbounded.
  std::size_t epoch_queue_capacity = 4;
};

/// Options for a threaded in-process cluster run.
struct LocalClusterOptions {
  TPartScheduler::Options scheduler;
  SinkEpoch sticky_ttl = 2;
  /// Executor worker threads per machine in T-Part mode (the version CC
  /// makes >1 safe; results are interleaving-independent).
  int executor_workers = 1;
  /// Which wire substrate carries inter-machine messages: the direct
  /// in-memory path (default), serialized in-process queues, or loopback
  /// TCP — optionally with seeded fault injection (net/transport.h).
  /// Results must be identical over every transport; the transport tests
  /// assert exactly this.
  TransportOptions transport;
  /// RunTPart engine selection. Batch mode (default, the seed behaviour)
  /// materializes the workload, schedules it to completion, and
  /// pre-enqueues every plan before starting executors. Streaming mode
  /// runs the paper's §3.1 layering for real: requests are admitted
  /// incrementally through a Sequencer, scheduled on a dedicated thread,
  /// and each sunk plan ships to the machines as a wire message the
  /// moment it exists — memory stays bounded by the `pipeline` caps.
  /// Both modes produce identical results for the same workload.
  bool streaming = false;
  PipelineOptions pipeline;

  LocalClusterOptions() {
    // Procedures in the runtime can abort, so transactions must read the
    // objects they write (§5.3).
    scheduler.graph.read_own_writes = true;
  }
};

/// Outcome of a cluster run: per-transaction results in total order, plus
/// commit/abort counts and the transport's traffic counters.
struct ClusterRunOutcome {
  std::vector<TxnResult> results;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  TransportStats transport;
  /// Streaming-mode stage counters (zero in batch mode).
  PipelineStats pipeline;
};

/// A multi-machine deterministic database in one process: N Machines
/// (each a partition-owning executor + service thread) wired by in-memory
/// channels. Supports both execution engines over the same workload:
///  * RunCalvin() — the §2.1 baseline (peer-pushing, every participant
///    executes);
///  * RunTPart() — the paper's engine (one executor per transaction,
///    T-graph-partitioned, forward-pushing).
/// Both must produce identical results and identical final database state
/// as the serial reference — the integration tests assert exactly this.
class LocalCluster {
 public:
  LocalCluster(const Workload* workload, LocalClusterOptions options);
  ~LocalCluster();

  /// Rebuilds stores (reloading initial data) and machines.
  void Reset();

  ClusterRunOutcome RunTPart();
  ClusterRunOutcome RunCalvin();

  PartitionedStore& store() { return *store_; }
  Machine& machine(MachineId m) { return *machines_.at(m); }
  std::size_t num_machines() const { return machines_.size(); }

  /// Plans of the last batch-mode RunTPart (for inspection / recovery
  /// tests). Streaming mode deliberately retains nothing here: plans are
  /// shipped and dropped, keeping memory bounded by the stage caps.
  const std::vector<SinkPlan>& last_plans() const { return last_plans_; }

 private:
  ClusterRunOutcome RunTPartBatch();
  ClusterRunOutcome RunTPartStreaming();
  void StopAll();
  ClusterRunOutcome CollectResults(bool dedup_participants);

  const Workload* workload_;
  LocalClusterOptions options_;
  bool used_ = false;
  std::unique_ptr<PartitionedStore> store_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<SinkPlan> last_plans_;
};

}  // namespace tpart

#endif  // TPART_RUNTIME_CLUSTER_H_
