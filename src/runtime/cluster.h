#ifndef TPART_RUNTIME_CLUSTER_H_
#define TPART_RUNTIME_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "metrics/run_stats.h"
#include "net/transport.h"
#include "runtime/machine.h"
#include "scheduler/tpart_scheduler.h"
#include "sequencer/sequencer.h"
#include "storage/partitioned_store.h"
#include "storage/zigzag_checkpoint.h"
#include "workload/workload.h"

namespace tpart {

/// Stage bounds for the streaming pipeline (RunTPart with streaming=true):
/// admission → scheduler → dissemination → execution run as concurrent
/// stages connected by bounded queues, so a full stage backpressures its
/// upstream instead of buffering without limit.
struct PipelineOptions {
  /// Admission-stage batching (batch size, dummy padding §3.3).
  Sequencer::Options sequencer;
  /// Ordered batches buffered between admission and the scheduler.
  std::size_t batch_queue_capacity = 4;
  /// Sunk plans buffered between the scheduler and dissemination.
  std::size_t plan_queue_capacity = 4;
  /// Sinking rounds in flight per machine: disseminated but not fully
  /// executed. Dissemination blocks past this, which is how slow
  /// executors throttle the scheduler. 0 = unbounded.
  std::size_t epoch_queue_capacity = 4;
};

/// Options for a threaded in-process cluster run.
struct LocalClusterOptions {
  TPartScheduler::Options scheduler;
  SinkEpoch sticky_ttl = 2;
  /// Executor worker threads per machine in T-Part mode (the version CC
  /// makes >1 safe; results are interleaving-independent).
  int executor_workers = 1;
  /// Which wire substrate carries inter-machine messages: the direct
  /// in-memory path (default), serialized in-process queues, or loopback
  /// TCP — optionally with seeded fault injection (net/transport.h).
  /// Results must be identical over every transport; the transport tests
  /// assert exactly this.
  TransportOptions transport;
  /// RunTPart engine selection. Batch mode (default, the seed behaviour)
  /// materializes the workload, schedules it to completion, and
  /// pre-enqueues every plan before starting executors. Streaming mode
  /// runs the paper's §3.1 layering for real: requests are admitted
  /// incrementally through a Sequencer, scheduled on a dedicated thread,
  /// and each sunk plan ships to the machines as a wire message the
  /// moment it exists — memory stays bounded by the `pipeline` caps.
  /// Both modes produce identical results for the same workload.
  bool streaming = false;
  PipelineOptions pipeline;

  /// Deterministic crash injection (streaming runs only): the chosen
  /// machine crash-stops — no goodbyes, in-flight traffic dropped — at a
  /// chosen point, and the run either recovers it in place (§5.4 local
  /// replay from checkpoint + request/network logs) or merely detects the
  /// failure and reports it. Same seed + same schedule reproduces the
  /// same crash, replay, and final state.
  struct CrashSchedule {
    MachineId machine = kInvalidMachine;
    /// Crash once sinking round `at_epoch` fully executes at `machine`
    /// (the first round it drains at or past this number).
    SinkEpoch at_epoch = 0;
    /// Alternative trigger: crash after this many executed plans,
    /// possibly mid-round. At most one of the two per run.
    std::uint64_t after_txns = 0;
    /// Recover in-run when true; detect-and-report only when false.
    bool recover = true;
    bool enabled() const { return machine != kInvalidMachine; }
  };
  CrashSchedule crash;

  /// Transport-level heartbeat failure detection. Enabled implicitly by
  /// an armed crash schedule; enable explicitly to watchdog healthy runs.
  struct FailureDetectorOptions {
    bool enabled = false;
    /// Probe period; the watchdog stamps each kHeartbeat with a rising
    /// sequence number.
    std::uint64_t heartbeat_interval_us = 1000;
    /// A machine whose recorded heartbeat sequence stalls longer than
    /// this is declared failed.
    std::uint64_t deadline_us = 100000;
  };
  FailureDetectorOptions detector;

  /// Record the §5.4 per-machine request/network logs during streaming
  /// runs (required for crash recovery; disable to keep long runs'
  /// memory strictly bounded).
  bool record_recovery_logs = true;

  /// Bounds every blocking wait in the run — executor response/credit/
  /// storage waits and the dissemination stage's queue receives. A wait
  /// that expires aborts the run with a stall diagnostic (executor
  /// paths) or surfaces as ClusterRunOutcome::fault (dissemination).
  /// 0 = wait forever (the seed behaviour).
  std::uint64_t stall_timeout_us = 120'000'000;

  LocalClusterOptions() {
    // Procedures in the runtime can abort, so transactions must read the
    // objects they write (§5.3).
    scheduler.graph.read_own_writes = true;
  }
};

/// Outcome of a cluster run: per-transaction results in total order, plus
/// commit/abort counts and the transport's traffic counters.
struct ClusterRunOutcome {
  std::vector<TxnResult> results;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  TransportStats transport;
  /// Streaming-mode stage counters (zero in batch mode).
  PipelineStats pipeline;
  /// Non-OK when the failure detector declared a machine dead with no
  /// recovery configured, or a dissemination wait timed out; the run
  /// still drains (results are then meaningless).
  Status fault;
  /// Crash-injection counters (crashes_injected stays 0 otherwise).
  RecoveryStats recovery;
};

/// A multi-machine deterministic database in one process: N Machines
/// (each a partition-owning executor + service thread) wired by in-memory
/// channels. Supports both execution engines over the same workload:
///  * RunCalvin() — the §2.1 baseline (peer-pushing, every participant
///    executes);
///  * RunTPart() — the paper's engine (one executor per transaction,
///    T-graph-partitioned, forward-pushing).
/// Both must produce identical results and identical final database state
/// as the serial reference — the integration tests assert exactly this.
class LocalCluster {
 public:
  LocalCluster(const Workload* workload, LocalClusterOptions options);
  ~LocalCluster();

  /// Rebuilds stores (reloading initial data) and machines.
  void Reset();

  ClusterRunOutcome RunTPart();
  ClusterRunOutcome RunCalvin();

  PartitionedStore& store() { return *store_; }
  Machine& machine(MachineId m) { return *machines_.at(m); }
  std::size_t num_machines() const { return machines_.size(); }

  /// Plans of the last batch-mode RunTPart (for inspection / recovery
  /// tests). Streaming mode deliberately retains nothing here: plans are
  /// shipped and dropped, keeping memory bounded by the stage caps.
  const std::vector<SinkPlan>& last_plans() const { return last_plans_; }

 private:
  ClusterRunOutcome RunTPartBatch();
  ClusterRunOutcome RunTPartStreaming();
  void StopAll();
  ClusterRunOutcome CollectResults(bool dedup_participants);
  /// Rebuilds exactly partition `m` from its Zig-Zag checkpoint (wipes
  /// the partition's store, streams the checkpoint back in). Unlike
  /// Reset(), no other partition is touched — recovery cost stays
  /// proportional to the crashed machine's data. Returns the number of
  /// records restored.
  std::size_t RestorePartition(MachineId m);

  const Workload* workload_;
  LocalClusterOptions options_;
  bool used_ = false;
  std::unique_ptr<PartitionedStore> store_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<Machine>> machines_;
  /// Per-partition Zig-Zag checkpoints captured at load time (crash runs
  /// only); the recovery baseline for RestorePartition().
  std::vector<std::unique_ptr<ZigZagCheckpointStore>> checkpoints_;
  std::vector<SinkPlan> last_plans_;
};

}  // namespace tpart

#endif  // TPART_RUNTIME_CLUSTER_H_
