#ifndef TPART_RUNTIME_CLUSTER_H_
#define TPART_RUNTIME_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "elastic/elastic_map.h"
#include "metrics/run_stats.h"
#include "net/transport.h"
#include "runtime/coordinator.h"
#include "runtime/machine.h"
#include "runtime/machine_checkpoint.h"
#include "scheduler/tpart_scheduler.h"
#include "sequencer/sequencer.h"
#include "storage/partitioned_store.h"
#include "workload/workload.h"

namespace tpart {

namespace obs {
class LiveSampler;
}  // namespace obs

/// Stage bounds for the streaming pipeline (RunTPart with streaming=true):
/// admission → scheduler → dissemination → execution run as concurrent
/// stages connected by bounded queues, so a full stage backpressures its
/// upstream instead of buffering without limit.
struct PipelineOptions {
  /// Admission-stage batching (batch size, dummy padding §3.3).
  Sequencer::Options sequencer;
  /// Ordered batches buffered between admission and the scheduler.
  std::size_t batch_queue_capacity = 4;
  /// Sunk plans buffered between the scheduler and dissemination.
  std::size_t plan_queue_capacity = 4;
  /// Sinking rounds in flight per machine: disseminated but not fully
  /// executed. Dissemination blocks past this, which is how slow
  /// executors throttle the scheduler. 0 = unbounded.
  std::size_t epoch_queue_capacity = 4;
};

/// Options for a threaded in-process cluster run.
struct LocalClusterOptions {
  TPartScheduler::Options scheduler;
  SinkEpoch sticky_ttl = 2;
  /// Executor worker threads per machine in T-Part mode (the version CC
  /// makes >1 safe; results are interleaving-independent).
  int executor_workers = 1;
  /// Which wire substrate carries inter-machine messages: the direct
  /// in-memory path (default), serialized in-process queues, or loopback
  /// TCP — optionally with seeded fault injection (net/transport.h).
  /// Results must be identical over every transport; the transport tests
  /// assert exactly this.
  TransportOptions transport;
  /// RunTPart engine selection. Batch mode (default, the seed behaviour)
  /// materializes the workload, schedules it to completion, and
  /// pre-enqueues every plan before starting executors. Streaming mode
  /// runs the paper's §3.1 layering for real: requests are admitted
  /// incrementally through a Sequencer, scheduled on a dedicated thread,
  /// and each sunk plan ships to the machines as a wire message the
  /// moment it exists — memory stays bounded by the `pipeline` caps.
  /// Both modes produce identical results for the same workload.
  bool streaming = false;
  PipelineOptions pipeline;

  /// One deterministic crash-stop: which machine dies and when. A
  /// schedule may carry several of these (the chaos matrix); each fires
  /// after the previous victim has recovered, so at most one machine is
  /// down at a time.
  struct CrashEvent {
    MachineId machine = kInvalidMachine;
    /// Crash once sinking round `at_epoch` fully executes at `machine`
    /// (the first round it drains at or past this number).
    SinkEpoch at_epoch = 0;
    /// Alternative trigger: crash after this many executed plans,
    /// possibly mid-round. At most one trigger per event.
    std::uint64_t after_txns = 0;
    /// Third trigger: crash before the executor handles anything at all
    /// (the epoch-0 edge — no sinking round has drained yet).
    bool at_start = false;
  };

  /// Deterministic crash injection (streaming runs only): each scheduled
  /// machine crash-stops — no goodbyes, in-flight traffic dropped — at
  /// its chosen point, and the run either recovers it in place (§5.4
  /// local replay from checkpoint + request/network logs) or merely
  /// detects the failure and reports it. Same seed + same schedule
  /// reproduces the same crashes, replays, and final state.
  struct CrashSchedule {
    MachineId machine = kInvalidMachine;
    SinkEpoch at_epoch = 0;
    std::uint64_t after_txns = 0;
    bool at_start = false;
    /// Additional crashes after the first (in firing order). The same
    /// machine may appear again — a repeat crash after its own recovery.
    std::vector<CrashEvent> more;
    /// Coordinator (leader) crash-stops, one per entry, fired after the
    /// first shipped round with epoch >= the entry (in order). Requires
    /// coordinator.standbys >= 1 and streaming mode; composes freely
    /// with the worker events above. enabled() stays worker-only — a
    /// coordinator-only schedule does not arm worker crash machinery.
    std::vector<SinkEpoch> coordinator_at;
    /// Zombie-leader revival, paired index-wise with coordinator_at:
    /// entry i > 0 means the leader crashed by coordinator_at[i] was
    /// only *paused* and comes back once the new term's stream reaches
    /// epoch >= the entry: its stale in-flight round, a stale
    /// plan-stream-end, and a stale log append are replayed onto the
    /// wire, all carrying the old term. End-to-end term fencing must
    /// reject every one of them (FailoverStats::fenced_*) and the run
    /// must stay byte-identical to fault-free. 0 (or a missing entry) =
    /// plain crash-stop, the pre-revival behaviour. CLI syntax:
    /// --crash seq@E+revive@E'.
    std::vector<SinkEpoch> coordinator_revive_at;
    /// Recover in-run when true; detect-and-report only when false.
    /// Applies to every event in the schedule.
    bool recover = true;
    bool enabled() const { return machine != kInvalidMachine; }
    /// The full schedule in firing order (the legacy single-crash fields
    /// are event zero).
    std::vector<CrashEvent> Events() const {
      std::vector<CrashEvent> events;
      if (enabled()) {
        events.push_back(CrashEvent{machine, at_epoch, after_txns, at_start});
        events.insert(events.end(), more.begin(), more.end());
      }
      return events;
    }
  };
  CrashSchedule crash;

  /// Deterministic slowness injection: the chosen machine delays its
  /// heartbeat handling by `delay_us` once per `period_us`. A straggler
  /// is slow, not dead — the failure detector must NOT declare it failed
  /// (the delay stays under the deadline).
  struct StragglerSchedule {
    MachineId machine = kInvalidMachine;
    std::uint64_t delay_us = 0;
    std::uint64_t period_us = 0;
    bool enabled() const { return machine != kInvalidMachine && delay_us > 0; }
  };
  StragglerSchedule straggler;

  /// Periodic incremental checkpointing (streaming runs only): every
  /// machine captures a MachineCheckpoint at the first drained epoch
  /// boundary at or past each multiple of this, then truncates its §5.4
  /// logs; the cluster prunes the resend window up to the minimum
  /// checkpointed epoch across machines. Recovery then replays only the
  /// suffix since the victim's last checkpoint, and log memory plateaus
  /// instead of growing with run length. 0 = load-time checkpoint only
  /// (the seed behaviour).
  SinkEpoch checkpoint_every = 0;

  /// One elastic-membership change: after sinking round `at_epoch` fully
  /// executes everywhere, the active machine set grows (delta > 0) or
  /// shrinks (delta < 0) by |delta| machines and the keys whose home
  /// changes migrate over the wire before round at_epoch + 1 ships.
  struct ResizeEvent {
    SinkEpoch at_epoch = 0;
    int delta = 0;
  };

  /// Elastic membership (streaming runs only): machine slots for the
  /// maximum membership are allocated up front; each event only changes
  /// where keys are homed and ships the moved partition state at a
  /// quiesced sink-epoch barrier. Results stay byte-identical to a
  /// fixed-membership run of the same workload. Requires a bounded epoch
  /// queue (the barrier quiesces via epoch credits).
  struct ResizeSchedule {
    /// Events in firing order; cut epochs strictly increasing, >= 1.
    std::vector<ResizeEvent> events;
    /// How moved keys are chosen (rehash, or Lion-style hot-key pinning
    /// from scheduler-observed access frequencies).
    MigrationPolicy policy = MigrationPolicy::kRehash;
    /// Hot keys pinned per step (kHotKey only).
    std::size_t hot_keys = 64;
    bool enabled() const { return !events.empty(); }
  };
  ResizeSchedule resize;

  /// Transport-level heartbeat failure detection. Enabled implicitly by
  /// an armed crash schedule; enable explicitly to watchdog healthy runs.
  struct FailureDetectorOptions {
    bool enabled = false;
    /// Probe period; the watchdog stamps each kHeartbeat with a rising
    /// sequence number.
    std::uint64_t heartbeat_interval_us = 1000;
    /// A machine whose recorded heartbeat sequence stalls longer than
    /// this is declared failed. With `adaptive` on this is the floor, not
    /// the verdict: the deadline must expire AND the phi-accrual
    /// suspicion level must cross `phi_threshold`.
    std::uint64_t deadline_us = 100000;
    /// Phi-accrual adaptive gate (DESIGN §4j): suspicion is computed from
    /// each machine's observed heartbeat inter-arrival history, so
    /// stragglers and gray-failure slow links — slow but alive — never
    /// trigger a false-positive recovery, while a true crash-stop's
    /// unbounded silence still crosses any threshold. Off = the fixed
    /// deadline alone decides (the pre-§4j behaviour).
    bool adaptive = true;
    double phi_threshold = 8.0;
    /// Inter-arrival samples kept per machine.
    std::size_t history = 64;
  };
  FailureDetectorOptions detector;

  /// Coordinator replication (DESIGN §4i): with standbys >= 1 the
  /// streaming coordinator runs as a leader replica whose sequenced
  /// batches are quorum-committed to standby replicas before entering
  /// the pipeline, and a scheduled coordinator crash fails over to a
  /// standby that rebuilds all scheduler state by deterministic replay.
  CoordinatorOptions coordinator;

  /// Record the §5.4 per-machine request/network logs during streaming
  /// runs (required for crash recovery; disable to keep long runs'
  /// memory strictly bounded).
  bool record_recovery_logs = true;

  /// Record the per-round dissemination timeline in the outcome (one
  /// entry per sinking round — implied by an armed resize schedule; the
  /// elasticity bench derives throughput-dip depth and reconvergence
  /// from the inter-round gaps).
  bool record_epoch_timeline = false;

  /// Bounds every blocking wait in the run — executor response/credit/
  /// storage waits and the dissemination stage's queue receives. A wait
  /// that expires aborts the run with a stall diagnostic (executor
  /// paths) or surfaces as ClusterRunOutcome::fault (dissemination).
  /// 0 = wait forever (the seed behaviour).
  std::uint64_t stall_timeout_us = 120'000'000;

  /// Live observability plane (DESIGN §4f). When `live_sampler` is set,
  /// the streaming run installs a source over the pipeline's hot-path
  /// counters — admitted/planned/committed, T-graph size, distributed-txn
  /// ratio, per-machine inbound and in-flight depths, the coordinator
  /// term, and the scheduler's hottest key — and drives the sampler every
  /// `sample_every_us` of wall time for the duration of the run. The
  /// caller owns the sampler and reads or streams its snapshots
  /// (obs/live_sampler.h); sampling reads relaxed counters only and never
  /// blocks the pipeline. Ignored in batch mode.
  obs::LiveSampler* live_sampler = nullptr;
  std::uint64_t sample_every_us = 10'000;

  /// Causal-timeline sampling stride (--txn-sample=1/N): transactions
  /// with id % N == 0 emit async trace events at admission, round
  /// receipt, execution, and commit, stitched into one end-to-end span
  /// per transaction across machines and coordinator terms. Sink-plan
  /// messages carry a packed trace context (obs/trace_context.h) on the
  /// wire so receive-side markers know the origin term. 0 = off.
  std::uint64_t txn_sample = 0;

  LocalClusterOptions() {
    // Procedures in the runtime can abort, so transactions must read the
    // objects they write (§5.3).
    scheduler.graph.read_own_writes = true;
  }
};

/// Outcome of a cluster run: per-transaction results in total order, plus
/// commit/abort counts and the transport's traffic counters.
struct ClusterRunOutcome {
  std::vector<TxnResult> results;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  TransportStats transport;
  /// Streaming-mode stage counters (zero in batch mode).
  PipelineStats pipeline;
  /// Non-OK when the failure detector declared a machine dead with no
  /// recovery configured, or a dissemination wait timed out; the run
  /// still drains (results are then meaningless).
  Status fault;
  /// Crash-injection counters (crashes_injected stays 0 otherwise).
  /// With a multi-crash schedule the count fields accumulate across
  /// crashes; machine/epoch/detection reflect the last one handled.
  RecoveryStats recovery;
  /// Coordinator replication/failover counters (all zero unless
  /// coordinator.standbys > 0).
  FailoverStats failover;
  /// Periodic-checkpointing counters (checkpoints_taken stays 0 unless
  /// checkpoint_every was set).
  CheckpointStats checkpoint;
  /// Elastic-membership counters (membership_steps stays 0 unless a
  /// resize schedule was armed).
  MigrationStats migration;
  /// Dissemination timeline (resize runs or record_epoch_timeline):
  /// microseconds since the stream started at which each sinking round
  /// finished shipping. A migration barrier shows up as a widened gap
  /// around its cut epoch.
  struct EpochTick {
    SinkEpoch epoch = 0;
    std::uint64_t us_since_start = 0;
  };
  std::vector<EpochTick> timeline;
};

/// Fills `options` with a seeded chaos schedule over `num_machines`
/// machines and roughly `span_epochs` sinking rounds: two sequential
/// crashes of distinct machines, a repeat crash of the first victim
/// after its own recovery, and (with >= 3 machines) a straggler that
/// delays heartbeat handling without ever breaching the detector
/// deadline. All crashes recover in place. With `extended` the schedule
/// additionally draws (after every base draw, so base schedules stay
/// seed-stable) a symmetric link-partition window, a gray-failure slow
/// link, and — when a coordinator crash is armed — converts it into a
/// zombie pause+revive. Returns a human-readable description of the
/// schedule; the same seed always produces the same schedule.
std::string ApplySeededChaos(std::uint64_t seed, std::size_t num_machines,
                             SinkEpoch span_epochs,
                             LocalClusterOptions& options,
                             bool extended = false);

/// A multi-machine deterministic database in one process: N Machines
/// (each a partition-owning executor + service thread) wired by in-memory
/// channels. Supports both execution engines over the same workload:
///  * RunCalvin() — the §2.1 baseline (peer-pushing, every participant
///    executes);
///  * RunTPart() — the paper's engine (one executor per transaction,
///    T-graph-partitioned, forward-pushing).
/// Both must produce identical results and identical final database state
/// as the serial reference — the integration tests assert exactly this.
class LocalCluster {
 public:
  LocalCluster(const Workload* workload, LocalClusterOptions options);
  ~LocalCluster();

  /// Rebuilds stores (reloading initial data) and machines.
  void Reset();

  ClusterRunOutcome RunTPart();
  ClusterRunOutcome RunCalvin();

  PartitionedStore& store() { return *store_; }
  Machine& machine(MachineId m) { return *machines_.at(m); }
  std::size_t num_machines() const { return machines_.size(); }

  /// The epoch-versioned key -> machine map of a resize run, or nullptr
  /// when no resize schedule is armed. For tests inspecting placement.
  const ElasticPartitionMap* elastic_map() const { return elastic_.get(); }

  /// Plans of the last batch-mode RunTPart (for inspection / recovery
  /// tests). Streaming mode deliberately retains nothing here: plans are
  /// shipped and dropped, keeping memory bounded by the stage caps.
  const std::vector<SinkPlan>& last_plans() const { return last_plans_; }

  /// Machine m's checkpoint image (records + volatile state + logs
  /// truncation point), or nullptr when the run keeps none (no crash
  /// schedule and no checkpoint_every). For recovery inspection and the
  /// offline checkpoint-suffix replay tests.
  MachineCheckpoint* checkpoint(MachineId m) {
    return static_cast<std::size_t>(m) < checkpoints_.size()
               ? checkpoints_[m].get()
               : nullptr;
  }

 private:
  ClusterRunOutcome RunTPartBatch();
  ClusterRunOutcome RunTPartStreaming();
  /// Executes membership step `step_idx` at its cut: quiesces the stream
  /// (every in-flight round executed, every service FIFO drained),
  /// computes and ships the migration routes, waits for every image to
  /// install, and forces a checkpoint on all machines at the cut epoch so
  /// no later replay can resurrect moved keys. Called by the
  /// dissemination stage before shipping the first round past the cut.
  /// On a wait timeout the returned status carries a stall diagnostic and
  /// the run is declared faulted.
  Status RunMembershipStep(std::size_t step_idx, MigrationStats& stats,
                           std::uint64_t term);
  void StopAll();
  ClusterRunOutcome CollectResults(bool dedup_participants);
  /// Rebuilds exactly partition `m` from its Zig-Zag checkpoint (wipes
  /// the partition's store, streams the checkpoint back in). Unlike
  /// Reset(), no other partition is touched — recovery cost stays
  /// proportional to the crashed machine's data. Returns the number of
  /// records restored.
  std::size_t RestorePartition(MachineId m);

  const Workload* workload_;
  LocalClusterOptions options_;
  bool used_ = false;
  /// Set when options_.resize is armed: the versioned map every layer
  /// (store routing, scheduler, machines) shares for the run.
  std::shared_ptr<ElasticPartitionMap> elastic_;
  std::unique_ptr<PartitionedStore> store_;
  std::unique_ptr<Transport> transport_;
  std::vector<std::unique_ptr<Machine>> machines_;
  /// Coordinator replica ensemble (coordinator.standbys > 0 only); its
  /// replicas occupy transport endpoints [num_machines, num_machines+R).
  std::unique_ptr<CoordinatorReplicaSet> coordinator_;
  /// Per-machine checkpoints (crash and/or checkpoint_every runs only).
  /// Seeded with the loaded partition state; with checkpoint_every set,
  /// each machine folds its dirty keys and volatile state in at every
  /// cadence boundary. The recovery baseline for RestorePartition().
  std::vector<std::unique_ptr<MachineCheckpoint>> checkpoints_;
  std::vector<SinkPlan> last_plans_;
};

}  // namespace tpart

#endif  // TPART_RUNTIME_CLUSTER_H_
