#include "runtime/coordinator.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace tpart {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t UsBetween(Clock::time_point a, Clock::time_point b) {
  if (b <= a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

}  // namespace

CoordinatorReplicaSet::CoordinatorReplicaSet(CoordinatorOptions options,
                                             std::size_t num_machines,
                                             SendFn send)
    : options_(options), num_machines_(num_machines), send_(std::move(send)) {
  TPART_CHECK(options_.standbys >= 1)
      << "a replicated coordinator needs at least one standby";
  const std::size_t n = 1 + options_.standbys;
  replicas_.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    replicas_.push_back(std::make_unique<Replica>());
  }
}

CoordinatorReplicaSet::~CoordinatorReplicaSet() { Shutdown(); }

void CoordinatorReplicaSet::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  shutdown_ = false;
  const auto now = Clock::now();
  for (auto& rep : replicas_) rep->last_hb = now;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    replicas_[r]->pump = std::thread([this, r] { PumpLoop(r); });
  }
  heartbeat_thread_ = std::thread([this] { HeartbeatLoop(); });
}

void CoordinatorReplicaSet::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    started_ = false;
    shutdown_ = true;
  }
  commit_cv_.notify_all();
  elected_cv_.notify_all();
  sync_cv_.notify_all();
  wm_cv_.notify_all();
  for (auto& rep : replicas_) {
    Message stop;
    stop.type = Message::Type::kShutdown;
    rep->inbound.Send(std::move(stop));
  }
  for (auto& rep : replicas_) {
    if (rep->pump.joinable()) rep->pump.join();
  }
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
}

void CoordinatorReplicaSet::Deliver(std::size_t r, Message msg) {
  TPART_CHECK(r < replicas_.size());
  replicas_[r]->inbound.Send(std::move(msg));
}

void CoordinatorReplicaSet::HeartbeatLoop() {
  for (;;) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.heartbeat_interval_us));
    std::size_t leader;
    std::uint64_t seq;
    std::vector<MachineId> targets;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) return;
      leader = leader_;
      if (replicas_[leader]->down) continue;
      seq = ++hb_seq_;
      for (std::size_t r = 0; r < replicas_.size(); ++r) {
        if (r != leader && !replicas_[r]->down) targets.push_back(endpoint(r));
      }
    }
    for (MachineId to : targets) {
      Message hb;
      hb.type = Message::Type::kHeartbeat;
      hb.req_id = seq;
      send_(endpoint(leader), to, std::move(hb));
    }
  }
}

void CoordinatorReplicaSet::PumpLoop(std::size_t r) {
  // A replica both pumps its inbound queue and, as a standby, watches the
  // leader's heartbeat. The receive timeout doubles as the election-check
  // cadence.
  const auto tick =
      std::chrono::microseconds(std::max<std::uint64_t>(
          options_.heartbeat_interval_us / 2, 100));
  for (;;) {
    Result<Message> got = replicas_[r]->inbound.ReceiveFor(tick);
    if (got.ok()) {
      Message msg = std::move(*got);
      if (msg.type == Message::Type::kShutdown) return;
      bool down;
      {
        std::lock_guard<std::mutex> lock(mu_);
        down = replicas_[r]->down;
      }
      // Crash-stop: a down replica neither acks nor appends. Messages are
      // simply dropped — the replication protocol re-ships the committed
      // suffix at RestartReplica(), so nothing is lost.
      if (down) continue;
      switch (msg.type) {
        case Message::Type::kHeartbeat: {
          std::lock_guard<std::mutex> lock(mu_);
          replicas_[r]->last_hb = Clock::now();
          // A heartbeat from a live leader cancels any armed candidacy.
          replicas_[r]->candidate = false;
          break;
        }
        case Message::Type::kLogAppend:
          HandleAppend(r, std::move(msg));
          break;
        case Message::Type::kLogAck:
          HandleAck(r, std::move(msg));
          break;
        case Message::Type::kLeaderClaim:
          HandleClaim(r, std::move(msg));
          break;
        default:
          break;  // stray worker traffic; ignore
      }
    }
    MaybeElect(r);
  }
}

void CoordinatorReplicaSet::HandleAppend(std::size_t r, Message msg) {
  // In-order append of one replicated batch. The link layer delivers
  // exactly once but a dropped packet's retry can land after its
  // successors, so an entry past the tail is parked until the gap fills
  // (reliable links guarantee it does). An entry already held is a
  // duplicate from catch-up shipping and is simply re-acked.
  const std::uint64_t index = msg.req_id;
  std::vector<std::pair<std::uint64_t, MachineId>> acks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Term fence (DESIGN §4j): an append stamped with a term below the
    // ensemble's current one comes from a deposed (zombie) leader —
    // reject it before it can park or duplicate-ack, let alone extend
    // the log. Live appends always carry the current term, so this only
    // ever trips on genuinely stale traffic.
    if (msg.term != 0 && msg.term < term_) {
      ++fenced_appends_;
      return;
    }
    Replica& rep = *replicas_[r];
    auto& log = rep.log;
    if (index > log.size()) {
      TxnBatch batch;
      batch.batch_id = msg.txn;
      batch.txns = std::move(msg.specs);
      rep.pending.emplace(index,
                          std::make_pair(msg.reply_to, std::move(batch)));
    } else {
      if (index == log.size()) {
        TxnBatch batch;
        batch.batch_id = msg.txn;
        batch.txns = std::move(msg.specs);
        log.push_back(std::move(batch));
      }
      acks.emplace_back(index, msg.reply_to);
      // Drain parked successors the new tail made contiguous. Stale
      // entries below the tail were applied (and acked) via another
      // delivery already.
      auto it = rep.pending.begin();
      while (it != rep.pending.end() && it->first <= log.size()) {
        if (it->first == log.size()) {
          log.push_back(std::move(it->second.second));
          acks.emplace_back(it->first, it->second.first);
        }
        it = rep.pending.erase(it);
      }
    }
  }
  for (const auto& [idx, ack_to] : acks) {
    Message ack;
    ack.type = Message::Type::kLogAck;
    ack.key = 0;  // append ack
    ack.req_id = idx;
    ack.txn = static_cast<TxnId>(r);
    send_(endpoint(r), ack_to, std::move(ack));
  }
}

void CoordinatorReplicaSet::HandleAck(std::size_t r, Message msg) {
  std::lock_guard<std::mutex> lock(mu_);
  ++log_acks_;
  switch (msg.key) {
    case 0: {  // append ack: count toward the entry's quorum
      ++append_acks_[msg.req_id];
      commit_cv_.notify_all();
      break;
    }
    case 1: {  // claim ack: a live replica adopted the new leader
      ++claim_acks_;
      sync_cv_.notify_all();
      break;
    }
    case 2: {  // watermark reply from worker machine msg.txn
      if (msg.req_id == probe_round_) {
        watermarks_[static_cast<MachineId>(msg.txn)] = msg.epoch;
        wm_cv_.notify_all();
      }
      break;
    }
    default:
      break;
  }
  (void)r;
}

void CoordinatorReplicaSet::HandleClaim(std::size_t r, Message msg) {
  const std::size_t claimant = static_cast<std::size_t>(msg.txn);
  const std::uint64_t claim_len = msg.req_id;
  std::size_t own_len;
  bool yield = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Term fence: a claim from an older term is a zombie's — never
    // adopt, never reset the election timer for it.
    if (msg.term != 0 && msg.term < term_) {
      ++fenced_appends_;
      return;
    }
    own_len = replicas_[r]->log.size();
    if (replicas_[r]->candidate) {
      // Dueling claims: Zab tie-break — longer committed history wins,
      // ties go to the lower replica id.
      ++dueling_claims_;
      const bool rival_wins =
          claim_len > own_len || (claim_len == own_len && claimant < r);
      if (!rival_wins) yield = false;
      if (rival_wins) replicas_[r]->candidate = false;
    }
    if (yield) replicas_[r]->last_hb = Clock::now();
  }
  if (!yield) return;  // the rival will receive our claim and yield
  // Adopt: ship any committed suffix the claimant is missing (longest
  // history must win overall), then ack the claim.
  if (own_len > claim_len) {
    ShipLogRange(r, endpoint(claimant), claim_len, own_len);
  }
  Message ack;
  ack.type = Message::Type::kLogAck;
  ack.key = 1;  // claim ack
  ack.req_id = own_len;
  ack.txn = static_cast<TxnId>(r);
  send_(endpoint(r), endpoint(claimant), std::move(ack));
}

void CoordinatorReplicaSet::MaybeElect(std::size_t r) {
  const auto now = Clock::now();
  bool claim_now = false;
  std::uint64_t claim_len = 0;
  std::uint64_t claim_term = 0;
  std::vector<MachineId> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Replica& rep = *replicas_[r];
    if (shutdown_ || rep.down || leader_ == r) return;
    if (replicas_[leader_]->down == false) {
      // Leader believed alive; only heartbeat silence arms a candidacy.
      if (UsBetween(rep.last_hb, now) <= options_.election_timeout_us) {
        return;
      }
    } else if (UsBetween(rep.last_hb, now) <= options_.election_timeout_us) {
      // Leader known down but our timer has not fired yet — the timer is
      // the detector; CrashLeader() does not short-circuit it.
      return;
    }
    if (!rep.candidate) {
      // Election timer fired: record detection, arm the randomized
      // backoff, keep pumping (a rival's claim can still cancel us).
      if (!timeout_recorded_) {
        timeout_recorded_ = true;
        t_timeout_ = now;
      }
      Rng jitter(options_.seed + 0x9E37ULL * (r + 1) + term_);
      const std::uint64_t backoff =
          options_.backoff_base_us * r +
          jitter.NextBelow(std::max<std::uint64_t>(options_.backoff_base_us,
                                                   1));
      rep.candidate = true;
      rep.claim_deadline = now + std::chrono::microseconds(backoff);
      return;
    }
    if (now < rep.claim_deadline) return;
    // Backoff elapsed with no live leader and no winning rival: claim.
    rep.candidate = false;
    leader_ = r;
    ++term_;
    elected_ = true;
    elected_leader_ = r;
    claim_acks_ = 0;
    t_claimed_ = now;
    claim_now = true;
    claim_len = rep.log.size();
    claim_term = term_;
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (i != r && !replicas_[i]->down) targets.push_back(endpoint(i));
    }
  }
  if (!claim_now) return;
  for (MachineId to : targets) {
    Message claim;
    claim.type = Message::Type::kLeaderClaim;
    claim.txn = static_cast<TxnId>(r);
    claim.req_id = claim_len;
    claim.epoch = static_cast<SinkEpoch>(claim_term);
    claim.term = claim_term;
    send_(endpoint(r), to, std::move(claim));
  }
  elected_cv_.notify_all();
}

void CoordinatorReplicaSet::ShipLogRange(std::size_t src, MachineId dst_ep,
                                         std::size_t from, std::size_t to) {
  std::vector<Message> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto& log = replicas_[src]->log;
    for (std::size_t i = from; i < to && i < log.size(); ++i) {
      Message m;
      m.type = Message::Type::kLogAppend;
      m.req_id = i;
      m.txn = static_cast<TxnId>(log[i].batch_id);
      m.epoch = static_cast<SinkEpoch>(term_);
      m.term = term_;
      m.specs = log[i].txns;
      m.reply_to = endpoint(src);
      out.push_back(std::move(m));
      ++log_appends_;
    }
  }
  for (Message& m : out) send_(endpoint(src), dst_ep, std::move(m));
}

bool CoordinatorReplicaSet::LeaderAppend(const TxnBatch& batch) {
  std::size_t leader;
  std::uint64_t index;
  std::uint64_t term;
  std::vector<MachineId> targets;
  {
    std::unique_lock<std::mutex> lock(mu_);
    leader = leader_;
    if (replicas_[leader]->down || shutdown_) return false;
    index = replicas_[leader]->log.size();
    term = term_;
    replicas_[leader]->log.push_back(batch);
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (r != leader && !replicas_[r]->down) targets.push_back(endpoint(r));
    }
    log_appends_ += targets.size();
  }
  for (MachineId to : targets) {
    Message m;
    m.type = Message::Type::kLogAppend;
    m.req_id = index;
    m.txn = static_cast<TxnId>(batch.batch_id);
    m.term = term;
    m.specs = batch.txns;
    m.reply_to = endpoint(leader);
    send_(endpoint(leader), to, std::move(m));
  }
  // Majority of the full ensemble, leader's own copy included.
  const std::size_t quorum = replicas_.size() / 2 + 1;
  const std::size_t acks_needed = quorum - 1;
  std::unique_lock<std::mutex> lock(mu_);
  commit_cv_.wait(lock, [&] {
    return shutdown_ || replicas_[leader]->down ||
           append_acks_[index] >= acks_needed;
  });
  if (shutdown_ || replicas_[leader]->down) return false;
  append_acks_.erase(index);
  ++committed_batches_;
  return true;
}

void CoordinatorReplicaSet::CrashLeader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    replicas_[leader_]->down = true;
    elected_ = false;
    timeout_recorded_ = false;
    t_crash_ = Clock::now();
  }
  commit_cv_.notify_all();
}

Result<std::size_t> CoordinatorReplicaSet::WaitElected(
    std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = Clock::now() + timeout;
  if (!elected_cv_.wait_until(lock, deadline,
                              [&] { return elected_ || shutdown_; })) {
    return Status::Unavailable("no standby claimed leadership in time");
  }
  if (shutdown_) return Status::Unavailable("coordinator shut down");
  return elected_leader_;
}

void CoordinatorReplicaSet::SyncNewLeader() {
  std::unique_lock<std::mutex> lock(mu_);
  std::size_t live_peers = 0;
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    if (r != leader_ && !replicas_[r]->down) ++live_peers;
  }
  sync_cv_.wait(lock,
                [&] { return shutdown_ || claim_acks_ >= live_peers; });
}

void CoordinatorReplicaSet::RestartReplica(std::size_t r) {
  std::size_t leader_len;
  std::size_t rep_len;
  std::size_t src;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Replica& rep = *replicas_[r];
    src = leader_;
    leader_len = replicas_[leader_]->log.size();
    // Drop any uncommitted divergent tail: the new leader's committed
    // history is the authority (Zab truncation on rejoin).
    if (rep.log.size() > leader_len) rep.log.resize(leader_len);
    // Parked out-of-order entries from before the crash are stale: every
    // one of them is either already committed (the catch-up ship below
    // re-delivers it) or uncommitted (the new leader re-appends it at
    // the same index with identical content — the stream is
    // deterministic).
    rep.pending.clear();
    rep_len = rep.log.size();
    rep.down = false;
    rep.candidate = false;
    rep.last_hb = Clock::now();
  }
  if (leader_len > rep_len) {
    ShipLogRange(src, endpoint(r), rep_len, leader_len);
  }
}

Result<std::vector<SinkEpoch>> CoordinatorReplicaSet::ProbeWatermarks(
    std::chrono::microseconds timeout) {
  std::uint64_t round;
  std::size_t leader;
  std::uint64_t term;
  {
    std::lock_guard<std::mutex> lock(mu_);
    round = ++probe_round_;
    leader = leader_;
    term = term_;
    watermarks_.clear();
  }
  const auto deadline = Clock::now() + timeout;
  const auto reprobe_every =
      std::chrono::microseconds(options_.election_timeout_us);
  for (;;) {
    // (Re-)probe every machine; a machine mid-recovery answers once its
    // service loop is back (the probe sits in its down-stash meanwhile,
    // but re-probing keeps us independent of stash timing).
    for (MachineId m = 0; m < static_cast<MachineId>(num_machines_); ++m) {
      Message probe;
      probe.type = Message::Type::kLeaderClaim;
      probe.reply_to = endpoint(leader);
      probe.req_id = round;
      // Probes carry the new term: machines witness it (and raise their
      // fence) before any zombie traffic could possibly reach them.
      probe.term = term;
      send_(endpoint(leader), m, std::move(probe));
    }
    std::unique_lock<std::mutex> lock(mu_);
    const auto wait_until = std::min(deadline, Clock::now() + reprobe_every);
    wm_cv_.wait_until(lock, wait_until, [&] {
      return shutdown_ || watermarks_.size() >= num_machines_;
    });
    if (shutdown_) return Status::Unavailable("coordinator shut down");
    if (watermarks_.size() >= num_machines_) {
      std::vector<SinkEpoch> out(num_machines_, 0);
      for (const auto& [m, e] : watermarks_) {
        out[static_cast<std::size_t>(m)] = e;
      }
      return out;
    }
    if (Clock::now() >= deadline) {
      return Status::Unavailable("watermark probe timed out");
    }
  }
}

void CoordinatorReplicaSet::InjectStaleAppend(std::uint64_t stale_term,
                                              std::size_t zombie) {
  // Replay the zombie replica's last log entry onto the wire under its
  // deposed term — the append a paused-then-revived leader would send.
  // HandleAppend's term fence must reject it at every live replica.
  std::vector<std::pair<MachineId, Message>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto& log = replicas_[zombie]->log;
    if (log.empty()) return;
    const std::uint64_t index = log.size() - 1;
    for (std::size_t r = 0; r < replicas_.size(); ++r) {
      if (r == zombie || replicas_[r]->down) continue;
      Message m;
      m.type = Message::Type::kLogAppend;
      m.req_id = index;
      m.txn = static_cast<TxnId>(log[index].batch_id);
      m.term = stale_term;
      m.specs = log[index].txns;
      m.reply_to = endpoint(zombie);
      out.emplace_back(endpoint(r), std::move(m));
    }
  }
  for (auto& [to, m] : out) send_(endpoint(zombie), to, std::move(m));
}

std::vector<TxnBatch> CoordinatorReplicaSet::CommittedLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replicas_[leader_]->log;
}

std::size_t CoordinatorReplicaSet::leader() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leader_;
}

std::uint64_t CoordinatorReplicaSet::log_appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_appends_;
}

std::uint64_t CoordinatorReplicaSet::log_acks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_acks_;
}

std::uint64_t CoordinatorReplicaSet::committed_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_batches_;
}

std::uint64_t CoordinatorReplicaSet::dueling_claims() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dueling_claims_;
}

std::uint64_t CoordinatorReplicaSet::term() const {
  std::lock_guard<std::mutex> lock(mu_);
  return term_;
}

std::uint64_t CoordinatorReplicaSet::fenced_appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fenced_appends_;
}

std::uint64_t CoordinatorReplicaSet::last_detection_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return UsBetween(t_crash_, t_timeout_);
}

std::uint64_t CoordinatorReplicaSet::last_election_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return UsBetween(t_timeout_, t_claimed_);
}

}  // namespace tpart
