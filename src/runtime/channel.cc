#include "runtime/channel.h"

namespace tpart {

void Channel::Send(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_one();
}

Message Channel::Receive() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !queue_.empty(); });
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::optional<Message> Channel::TryReceive() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::size_t Channel::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace tpart
