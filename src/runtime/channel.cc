#include "runtime/channel.h"

namespace tpart {

bool operator==(const Message& a, const Message& b) {
  return a.type == b.type && a.key == b.key && a.version == b.version &&
         a.replaces == b.replaces && a.dst_txn == b.dst_txn &&
         a.value == b.value && a.invalidate == b.invalidate &&
         a.total_reads == b.total_reads && a.awaits == b.awaits &&
         a.sticky == b.sticky && a.epoch == b.epoch &&
         a.reply_to == b.reply_to && a.req_id == b.req_id &&
         a.txn == b.txn && a.kvs == b.kvs &&
         a.plan_bytes == b.plan_bytes && a.specs == b.specs &&
         a.trace_ctx == b.trace_ctx && a.term == b.term;
}

std::size_t ApproxMessageBytes(const Message& m) {
  std::size_t bytes = sizeof(Message);
  bytes += m.value.SizeBytes();
  for (const auto& [key, rec] : m.kvs) {
    (void)key;
    bytes += sizeof(ObjectKey) + rec.SizeBytes();
  }
  bytes += m.plan_bytes.size();
  for (const TxnSpec& spec : m.specs) {
    bytes += sizeof(TxnSpec) + spec.params.size() * sizeof(spec.params[0]);
  }
  return bytes;
}

}  // namespace tpart
