#ifndef TPART_RUNTIME_MACHINE_H_
#define TPART_RUNTIME_MACHINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cache/cache_area.h"
#include "runtime/channel.h"
#include "runtime/machine_checkpoint.h"
#include "runtime/ring_channel.h"
#include "runtime/storage_service.h"
#include "scheduler/push_plan.h"
#include "storage/kv_store.h"
#include "txn/procedure.h"
#include "txn/txn.h"

namespace tpart {

/// One machine of the threaded runtime: an executor thread running the
/// machine's slice of each sinking round (T-Part mode) or its relevant
/// transactions in total order (Calvin mode), and a service thread
/// handling inbound messages (pushes, pulls, storage requests,
/// write-backs, peer reads).
///
/// Recovery support (§5.4): the machine logs the requests assigned to it
/// (after partitioning) and every inbound value-bearing message
/// (generalising the PUSH-log); see Replay in runtime/recovery.h.
class Machine {
 public:
  using SendFn = std::function<void(MachineId, Message)>;
  /// Batched fan-out: one call carries every (destination, message) pair
  /// of an executor's publish phase; the cluster routes it to
  /// Transport::SendBatch so serialized transports coalesce each
  /// destination's share into one wire frame.
  /// The vector is borrowed executor scratch: implementations move the
  /// messages out but must leave the vector (and its capacity) behind.
  using SendBatchFn =
      std::function<void(std::vector<std::pair<MachineId, Message>>&)>;

  /// `executor_workers` > 1 enables concurrent plan execution in T-Part
  /// mode: the version-based CC (reads wait for exact versions) makes the
  /// result independent of the interleaving, so workers may run plans out
  /// of order. Calvin mode always uses one executor thread.
  Machine(MachineId id, std::size_t num_machines, KvStore* store,
          const ProcedureRegistry* registry, SendFn send,
          SinkEpoch sticky_ttl = 2, int executor_workers = 1);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // ---- Work intake ----------------------------------------------------
  struct PlanItem {
    TxnPlan plan;
    TxnSpec spec;
  };
  /// T-Part mode: the machine's slice of sinking round `epoch`.
  void EnqueueTPartEpoch(SinkEpoch epoch, std::vector<PlanItem> items);
  /// Calvin mode: next relevant transaction in total order.
  void EnqueueCalvinTxn(TxnSpec spec);
  /// No more work will arrive; the executor drains and exits.
  void FinishEnqueue();

  // ---- Streaming intake (kSinkPlan/kPlanStreamEnd over the transport) --
  /// Bounds the number of sinking rounds in flight at this machine
  /// (disseminated but not fully executed). 0 = unbounded. Must be set
  /// before StartTPart().
  void set_epoch_queue_capacity(std::size_t capacity) {
    epoch_queue_capacity_ = capacity;
  }
  /// Called by the dissemination stage before shipping a round here;
  /// blocks while `capacity` rounds are in flight — this is how execution
  /// backpressures the scheduler. Returns true when the call had to wait.
  bool AcquireEpochCredit();
  /// Deadline-aware variant: a credit that never frees (the machine died
  /// and nobody recovers it) surfaces as kTimedOut instead of hanging
  /// dissemination forever. Zero timeout waits forever.
  enum class CreditGrant { kGranted, kGrantedAfterWait, kTimedOut };
  CreditGrant AcquireEpochCreditFor(std::chrono::microseconds timeout);
  /// Deepest the in-flight-round window ever got.
  std::size_t epoch_queue_high_water() const;
  /// Rounds currently in flight (disseminated but not fully executed) —
  /// the live sampler's per-machine depth gauge.
  std::size_t epochs_in_flight() const;
  /// Deepest the inbound service FIFO ever got (pipeline depth gauge).
  std::size_t inbound_queue_high_water() const { return inbound_.high_water(); }
  /// Sends that overflowed the inbound ring onto its spill deque.
  std::uint64_t inbound_overflow_spills() const {
    return inbound_.overflow_spills();
  }

  /// Invoked (from an executor thread) with each transaction's id as its
  /// result is recorded — admission-to-commit latency tracking. Set before
  /// StartTPart(); clear (nullptr) after JoinExecutor().
  void set_commit_hook(std::function<void(TxnId)> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Causal-timeline sampling stride (--txn-sample=1/N): transactions with
  /// id % every == 0 emit async trace events at receive/execute so their
  /// end-to-end timeline stitches across machines (obs/trace_context.h).
  /// 0 disables. Set before Start*().
  void set_txn_sample(std::uint64_t every) { txn_sample_ = every; }

  void StartTPart();
  void StartCalvin();
  /// Joins the executor thread (service keeps running until Stop()).
  void JoinExecutor();
  /// Stops the service thread and releases all waiters.
  void Stop();

  /// Network intake (called by the cluster router).
  void Deliver(Message msg) { inbound_.Send(std::move(msg)); }

  /// Replay mode (§5.4): outbound messages are suppressed and the logged
  /// inbound messages must be re-Delivered by the caller.
  void set_replay(bool replay) { replay_ = replay; }

  /// Disables the §5.4 request/network logs (recovery becomes impossible
  /// but long streaming runs keep memory bounded). Default on.
  void set_log_recording(bool on) { log_recording_ = on; }

  /// Bounds every executor-side wait (response, credit, peer reads,
  /// local storage read). On expiry the machine aborts with a stall
  /// diagnostic instead of hanging. Zero waits forever. Must be set
  /// before Start*().
  void set_stall_timeout(std::chrono::microseconds timeout) {
    stall_timeout_ = timeout;
  }

  // ---- Crash injection & in-run recovery (§5.4 made live) -------------
  /// Deterministic crash-stop trigger; at most one of the fields is
  /// honoured per point. Requires a single executor worker (FIFO
  /// execution makes the crash point, and hence the replay,
  /// deterministic).
  struct CrashPoint {
    /// Crash once sinking round `at_epoch` has fully executed here.
    SinkEpoch at_epoch = 0;
    /// Crash once this many plans have executed (may be mid-round).
    std::uint64_t after_txns = 0;
    /// Crash the executor at startup, before any plan runs (the epoch-0
    /// edge: the machine dies before the first sink round ships).
    bool at_start = false;
    bool armed() const {
      return at_epoch != 0 || after_txns != 0 || at_start;
    }
  };
  /// Arms the next crash trigger. May be called repeatedly before
  /// StartTPart() to queue a sequence of crash points (the chaos matrix:
  /// each fires after the previous crash's recovery); an `at_start`
  /// point must be the first queued.
  void ArmCrash(CrashPoint point);

  /// Arms straggler mode: the service thread sleeps `delay_us` before
  /// processing a heartbeat, at most once per `period_us` — responses
  /// arrive near the detector deadline without ever fully stalling, so a
  /// correct detector must NOT declare this machine failed. Call before
  /// StartTPart().
  void ArmStraggler(std::uint64_t delay_us, std::uint64_t period_us);
  /// True from the crash-stop until recovery completes.
  bool crashed() const;
  std::chrono::steady_clock::time_point crash_time() const;
  /// First sinking round whose execution was lost; the cluster re-ships
  /// rounds from here after Recover().
  SinkEpoch resume_epoch() const;

  /// Rebuilds this machine in-run after a crash-stop: wipes all volatile
  /// state, restores the partition via `restore_partition` (checkpoint),
  /// re-enqueues the request log, re-delivers the network log plus any
  /// traffic that arrived while down, and re-executes on a fresh executor
  /// thread with outbound traffic suppressed for replayed plans. Blocks
  /// until the replayed suffix has re-executed (the caller then re-ships
  /// lost rounds — never before, or live rounds would race the replay's
  /// credit accounting). Returns the number of replayed plans. Watchdog
  /// thread only.
  [[nodiscard]] std::size_t Recover(
      const std::function<void()>& restore_partition);
  /// Joins the executor spawned by Recover() (no-op if none). Call after
  /// the run's normal JoinExecutor() round.
  void JoinRecoveredExecutor();

  /// Sequence number of the latest kHeartbeat processed (0 before any);
  /// stalls while the machine is down — the failure detector's signal.
  std::uint64_t heartbeat_seen() const {
    return heartbeat_seen_.load(std::memory_order_acquire);
  }
  /// Plans executed so far (live + replayed).
  std::uint64_t executed_plans() const {
    return executed_plans_.load(std::memory_order_relaxed);
  }
  /// One-line snapshot of queue depths, stream progress and credit state
  /// for stall reports.
  std::string StallDiagnostic() const;
  /// Installs a cluster-level context provider whose output is appended
  /// to every StallDiagnostic() (per-link retry backlog, resend-window
  /// depth, failure-detector suspicion levels). Must be thread-safe; the
  /// cluster clears it (nullptr) before the run frame unwinds.
  void set_diagnostic_context(std::function<std::string()> context) {
    diagnostic_context_ = std::move(context);
  }

  // ---- Coordinator-term fencing (DESIGN §4j) --------------------------
  /// Highest coordinator term this machine has witnessed on any inbound
  /// message (0 before the first stamped message). Stream and migration
  /// control traffic carrying an older term is dropped — a deposed
  /// zombie leader cannot truncate or fork the new term's stream.
  std::uint64_t fence_term() const {
    return fence_term_.load(std::memory_order_acquire);
  }
  /// Stale-term control messages dropped by the fence.
  std::uint64_t fenced_messages() const {
    return fenced_messages_.load(std::memory_order_relaxed);
  }
  /// Releases every blocked wait with its shutdown value so a doomed run
  /// (detected failure, no recovery) drains instead of hanging. The
  /// machine keeps running; results are garbage and the caller reports
  /// the failure Status.
  void AbortPendingWaits();

  /// Key -> home machine, required by Calvin mode (peer sets and local
  /// writes are derived from data placement).
  void set_locator(std::function<MachineId(ObjectKey)> locate) {
    locate_ = std::move(locate);
  }

  /// Arms batched publish-phase fan-out: each executed plan's outbound
  /// pushes and remote write-backs are handed over in ONE call instead of
  /// per-message sends. Unset = per-message (the pre-batching wire
  /// traffic). Read requests always flush immediately — the executor
  /// blocks on their responses, so holding them in a batch would
  /// deadlock. Set before Start*().
  void set_send_batch(SendBatchFn send_batch) {
    send_batch_ = std::move(send_batch);
  }

  // ---- Results & state ------------------------------------------------
  MachineId id() const { return id_; }
  std::vector<TxnResult> TakeResults();
  KvStore& store() { return *store_; }
  CacheArea& cache() { return cache_; }
  StorageService& storage() { return storage_; }

  // ---- Recovery logs --------------------------------------------------
  struct RequestLogEntry {
    SinkEpoch epoch;
    PlanItem item;
  };
  const std::vector<RequestLogEntry>& request_log() const {
    return request_log_;
  }
  const std::vector<Message>& network_log() const { return network_log_; }

  // ---- Periodic checkpointing & log truncation ------------------------
  /// Attaches the machine's durable checkpoint image and the capture
  /// cadence: every `every` sink epochs the executor pauses at a drained
  /// epoch boundary, posts a kCheckpointBarrier through its own inbound
  /// queue, and the service thread captures `image` when it dispatches
  /// the barrier — at that point every earlier logged message is fully
  /// applied, so both §5.4 logs truncate to empty and subsequent traffic
  /// forms the replay suffix. `every` = 0 disables periodic captures
  /// (the image still serves as the load-time checkpoint). Streaming
  /// T-Part only; requires a single executor worker. Call before
  /// StartTPart().
  void ConfigureCheckpoint(MachineCheckpoint* image, SinkEpoch every);

  /// Restores the volatile images (cache area, storage version
  /// discipline, parked pulls) from `cp` into a fresh machine — the
  /// offline ReplayMachine() counterpart of the in-run restore inside
  /// Recover(). The partition data (cp.records) is the caller's job.
  void InstallCheckpoint(MachineCheckpoint& cp);

  /// Byte sizes of the §5.4 logs (current and high-water) — the
  /// log-growth signal checkpoint truncation exists to bound.
  std::size_t request_log_bytes() const;
  std::size_t network_log_bytes() const;
  std::size_t request_log_bytes_peak() const;
  std::size_t network_log_bytes_peak() const;

  // ---- Elastic migration (src/elastic) --------------------------------
  /// Per-machine migration counters; the cluster merges them into
  /// MigrationStats.
  struct MigrationCounters {
    std::uint64_t keys_moved_out = 0;
    std::uint64_t keys_moved_in = 0;
    std::uint64_t records_moved = 0;
    std::uint64_t bytes_shipped = 0;
    std::uint64_t chunks_shipped = 0;
    std::uint64_t duplicate_chunks_dropped = 0;
    std::uint64_t images_sent = 0;
    std::uint64_t images_installed = 0;
  };

  /// Migration-barrier quiesce: blocks until every disseminated round has
  /// fully executed here (all epoch credits released — this also rides
  /// out a crash + recovery + re-ship cycle, whose re-executed rounds
  /// release the stuck credits). Requires a bounded epoch queue
  /// (set_epoch_queue_capacity > 0): at capacity 0 credits are not
  /// tracked and a drain barrier is meaningless. kUnavailable on timeout
  /// (0 = wait forever).
  [[nodiscard]] Status WaitStreamDrained(std::chrono::microseconds timeout);

  /// Posts a local kServiceFence through the inbound queue (never via the
  /// transport — it is not a wire message) and blocks until the service
  /// thread dispatches it; every message delivered before the call has
  /// then been fully applied. kUnavailable on timeout (0 = forever).
  [[nodiscard]] Status FenceService(std::chrono::microseconds timeout);

  /// Control-plane checkpoint at the migration cut: captures the attached
  /// checkpoint image at `epoch` exactly like a cadence capture,
  /// truncating both §5.4 logs — so a later crash can never replay
  /// pre-cut traffic that resurrects moved-away keys. Call only while the
  /// machine is quiescent (stream drained + service fenced) and live;
  /// requires ConfigureCheckpoint.
  void ForceCheckpoint(SinkEpoch epoch);

  /// True once this machine, as migration source for `stream`, captured
  /// and shipped its partition image and dropped the moved keys.
  bool MigrationSourceDone(std::uint64_t stream) const;
  /// True once this machine, as migration target for `stream`, verified
  /// the image checksum and installed every entry.
  bool MigrationInstalled(std::uint64_t stream) const;
  MigrationCounters migration_counters() const;

 private:
  struct EpochWork {
    SinkEpoch epoch = 0;
    std::vector<PlanItem> items;
  };

  /// Machine lifecycle for crash injection. kDown: the service thread
  /// stashes (does not process) inbound traffic and the executor has
  /// exited. kRecovering: processing resumed; genuinely new traffic is
  /// logged again (a later crash must be able to replay it), while
  /// messages re-injected from the logs carry Message::redelivery and
  /// are not logged twice.
  enum class RunState { kLive, kDown, kRecovering };

  /// `initial` is true only for the StartTPart() executor; an `at_start`
  /// crash point fires there, never in a recovery executor.
  void TPartWorkerLoop(bool initial);
  void CalvinExecutorLoop();
  void ServiceLoop();
  void Dispatch(Message msg);
  void ExecutePlan(SinkEpoch epoch, const PlanItem& item, bool is_replay);
  void ExecuteCalvin(const TxnSpec& spec);
  void SendOut(MachineId to, Message msg);
  /// Flushes one publish phase's staged messages: through send_batch_
  /// when armed (batched wire framing), else message-by-message.
  void SendOutBatch(std::vector<std::pair<MachineId, Message>>& msgs);
  void CrashStop(SinkEpoch resume);

  // Checkpoint internals: the executor fences (RunCheckpointBarrier,
  // blocking until the capture finished), the service thread captures
  // (CaptureCheckpoint, on dispatching the barrier message).
  void RunCheckpointBarrier(SinkEpoch epoch);
  void CaptureCheckpoint(SinkEpoch epoch);

  /// Appends one inbound message to the §5.4 network log (byte-counted).
  void LogNetworkMessage(const Message& msg);

  // Elastic-migration internals (service thread). Their messages are
  // never network-logged: migration state crosses machines exactly once,
  // and the post-migration forced checkpoint owns its durability.
  void HandleMigrateBegin(Message msg);
  void HandleImageChunk(Message msg);
  void HandleMigrateCommit(Message msg);
  void InstallMigration(std::uint64_t stream);

  // Streaming intake internals (service thread only, except credit
  // release which executors trigger).
  void HandleSinkPlan(Message msg);
  void EnqueueStreamEpoch(SinkEpoch epoch, std::vector<PlanItem> items);
  /// Returns true when the round fully drained (its credit was released).
  bool OnPlanItemDone(SinkEpoch epoch);
  /// Marks one plan item of `epoch` done and returns true when the round
  /// fully drained — WITHOUT releasing the round's credit. The executor's
  /// crash-trigger path uses this to defer the release until after
  /// CrashStop: a migration barrier waking on the credit must already see
  /// the machine down, or it would start extracting the partition while
  /// recovery replay still reads it.
  bool MarkPlanItemDone(SinkEpoch epoch);
  void ReleaseEpochCredit();

  // Awaits a response delivered by the service thread for `req_id`.
  Record AwaitResponse(std::uint64_t req_id);

  MachineId id_;
  std::size_t num_machines_;
  KvStore* store_;
  const ProcedureRegistry* registry_;
  SendFn send_;
  SendBatchFn send_batch_;
  SinkEpoch sticky_ttl_;
  bool replay_ = false;
  std::function<MachineId(ObjectKey)> locate_;

  CacheArea cache_;
  StorageService storage_;
  /// Inbound message queue: MPSC ring with cv-parked consumer fallback
  /// (runtime/ring_channel.h). Producers — peer service threads (direct
  /// transport), the network receiver, the control plane, and our own
  /// executor's self-sends — take no lock on the fast path.
  RingChannel<Message> inbound_;

  // Executor work queue. T-Part work is flattened to per-plan units
  // consumed in total order by the worker pool; `replay` marks §5.4
  // recovery re-execution (outbound suppressed, not re-logged).
  struct WorkUnit {
    SinkEpoch epoch = 0;
    PlanItem item;
    bool replay = false;
  };
  mutable std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<WorkUnit> tpart_work_;
  std::deque<TxnSpec> calvin_work_;
  bool finished_enqueue_ = false;
  SinkEpoch evicted_upto_ = 0;
  int executor_workers_ = 1;
  std::vector<std::thread> worker_pool_;
  mutable std::mutex log_mu_;

  // Streaming intake: reliable transports may deliver rounds out of
  // order, but single-worker executors rely on FIFO epoch order (a popped
  // plan may only await versions produced by already-popped or remote
  // plans), so rounds are reordered and enqueued strictly from 1.
  // Guarded by stream_mu_: written by the service thread, wiped and read
  // by the recovery path on the watchdog thread.
  mutable std::mutex stream_mu_;
  std::map<SinkEpoch, std::vector<PlanItem>> pending_stream_plans_;
  SinkEpoch next_stream_epoch_ = 1;
  SinkEpoch stream_final_epoch_ = 0;
  bool stream_end_seen_ = false;
  /// Rounds dropped as duplicates (re-shipments the machine had already
  /// executed or buffered).
  std::uint64_t duplicate_rounds_dropped_ = 0;
  /// After a mid-round crash, the resume round is re-shipped whole; the
  /// plans in it that were already logged (hence replayed) are skipped.
  SinkEpoch recovered_partial_epoch_ = 0;
  std::unordered_set<TxnId> recovered_partial_txns_;

  // Epoch flow-control credits: rounds disseminated but not fully
  // executed here. epoch_outstanding_ (under work_mu_) counts each
  // in-flight round's unfinished plans; the credit window is its own
  // lock so executors releasing never contend with intake.
  std::unordered_map<SinkEpoch, std::size_t> epoch_outstanding_;
  std::size_t epoch_queue_capacity_ = 0;
  mutable std::mutex credit_mu_;
  std::condition_variable credit_cv_;
  std::size_t epochs_in_flight_ = 0;
  std::size_t epoch_high_water_ = 0;
  bool credit_shutdown_ = false;

  std::function<void(TxnId)> commit_hook_;

  // Request/response plumbing for remote pulls & storage reads.
  std::mutex resp_mu_;
  std::condition_variable resp_cv_;
  std::unordered_map<std::uint64_t, Record> responses_;
  bool resp_shutdown_ = false;

  // Calvin peer-read buffer: values received per transaction.
  std::mutex peer_mu_;
  std::condition_variable peer_cv_;
  std::unordered_map<TxnId, std::unordered_map<ObjectKey, Record>> peer_reads_;
  bool peer_shutdown_ = false;

  // Parked remote cache pulls: (key, version) -> pending requests.
  // Guarded by stream_mu_ (service thread + recovery wipe).
  std::map<std::pair<ObjectKey, TxnId>, std::vector<Message>> parked_pulls_;

  std::vector<TxnResult> results_;
  std::mutex results_mu_;

  // §5.4 logs; log_mu_ guards both (executor appends request entries,
  // the service thread appends network entries, recovery reads both,
  // checkpoint capture truncates both). Byte counters track the live
  // footprint; peaks survive truncation.
  std::vector<RequestLogEntry> request_log_;
  std::vector<Message> network_log_;
  bool log_recording_ = true;
  std::size_t request_log_bytes_ = 0;
  std::size_t network_log_bytes_ = 0;
  std::size_t request_log_bytes_peak_ = 0;
  std::size_t network_log_bytes_peak_ = 0;

  // ---- Periodic checkpointing -----------------------------------------
  MachineCheckpoint* checkpoint_ = nullptr;
  SinkEpoch checkpoint_every_ = 0;
  SinkEpoch next_checkpoint_epoch_ = 0;
  // Barrier handshake between the executor (waits) and the service
  // thread (captures, then signals).
  std::mutex ckpt_mu_;
  std::condition_variable ckpt_cv_;
  bool ckpt_waiting_ = false;
  bool ckpt_done_ = false;
  SinkEpoch ckpt_epoch_ = 0;

  // ---- Crash / recovery state -----------------------------------------
  // run_state_ is an atomic for lock-free reads on hot paths but is only
  // *written* under crash_mu_, so the service thread's stash-or-dispatch
  // decision (taken under crash_mu_) can never race a state flip — no
  // message is ever stranded in the stash after recovery reopens the
  // machine.
  std::atomic<RunState> run_state_{RunState::kLive};
  mutable std::mutex crash_mu_;
  std::condition_variable crash_cv_;
  /// Queued crash points, fired front-to-back (CrashStop pops the front
  /// and re-arms when more remain — the chaos matrix's repeat crashes).
  std::deque<CrashPoint> crash_points_;
  std::atomic<bool> crash_armed_{false};
  std::chrono::steady_clock::time_point crash_time_{};
  SinkEpoch resume_epoch_ = 0;
  /// Traffic received while down; crash-stop semantics say these were
  /// never received — re-injecting them at recovery models the peers'
  /// reliable transport retransmitting. Guarded by crash_mu_.
  std::vector<Message> down_stash_;
  /// Replayed plans not yet re-executed; recovery completes (state back
  /// to kLive) when it hits zero.
  std::atomic<std::size_t> replay_remaining_{0};
  std::thread recovery_executor_;

  // ---- Elastic migration state ----------------------------------------
  // Inbound image assembly, keyed by migration stream id. Chunks may
  // arrive out of order and the commit may overtake trailing chunks on a
  // faulty transport; installation fires from whichever message completes
  // the set.
  struct InboundImage {
    std::map<std::uint64_t, std::string> chunks;  // by chunk index
    bool commit_seen = false;
    std::uint64_t expect_chunks = 0;
    std::uint64_t expect_entries = 0;
    std::uint32_t checksum = 0;
  };
  mutable std::mutex migrate_mu_;
  std::unordered_map<std::uint64_t, InboundImage> inbound_images_;
  std::unordered_set<std::uint64_t> migration_source_done_;
  std::unordered_set<std::uint64_t> migration_installed_;
  MigrationCounters migration_counters_;

  // Service-fence handshake (FenceService <-> service thread).
  mutable std::mutex fence_mu_;
  std::condition_variable fence_cv_;
  std::uint64_t fence_posted_ = 0;
  std::uint64_t fence_seen_ = 0;

  // Straggler mode (service thread only): sleep before a heartbeat, at
  // most once per period, so responses skirt the detector deadline.
  std::uint64_t straggle_delay_us_ = 0;
  std::uint64_t straggle_period_us_ = 0;
  std::chrono::steady_clock::time_point last_straggle_{};

  std::atomic<std::uint64_t> heartbeat_seen_{0};
  std::atomic<std::uint64_t> executed_plans_{0};
  // Coordinator-term fence (DESIGN §4j): highest term witnessed on any
  // inbound message, and the count of stale-term control messages
  // dropped. Monotonic knowledge — recovery deliberately leaves it
  // intact (a rebuilt machine must keep rejecting its deposed leader).
  std::atomic<std::uint64_t> fence_term_{0};
  std::atomic<std::uint64_t> fenced_messages_{0};
  /// Cluster-supplied extra diagnostics (link backlog, resend-window
  /// depth, suspicion levels) appended to StallDiagnostic().
  std::function<std::string()> diagnostic_context_;
  /// Timeline sampling stride (set_txn_sample); read on the execute path.
  std::uint64_t txn_sample_ = 0;
  std::chrono::microseconds stall_timeout_{0};
  /// Set by AbortPendingWaits(): the run was declared failed. Executors
  /// drain their queues without running procedures (gathered values are
  /// shutdown placeholders, not real records).
  std::atomic<bool> draining_{false};

  std::thread executor_;
  std::thread service_;
  std::atomic<bool> service_running_{false};
};

}  // namespace tpart

#endif  // TPART_RUNTIME_MACHINE_H_
