#ifndef TPART_RUNTIME_MACHINE_H_
#define TPART_RUNTIME_MACHINE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/cache_area.h"
#include "runtime/channel.h"
#include "runtime/storage_service.h"
#include "scheduler/push_plan.h"
#include "storage/kv_store.h"
#include "txn/procedure.h"
#include "txn/txn.h"

namespace tpart {

/// One machine of the threaded runtime: an executor thread running the
/// machine's slice of each sinking round (T-Part mode) or its relevant
/// transactions in total order (Calvin mode), and a service thread
/// handling inbound messages (pushes, pulls, storage requests,
/// write-backs, peer reads).
///
/// Recovery support (§5.4): the machine logs the requests assigned to it
/// (after partitioning) and every inbound value-bearing message
/// (generalising the PUSH-log); see Replay in runtime/recovery.h.
class Machine {
 public:
  using SendFn = std::function<void(MachineId, Message)>;

  /// `executor_workers` > 1 enables concurrent plan execution in T-Part
  /// mode: the version-based CC (reads wait for exact versions) makes the
  /// result independent of the interleaving, so workers may run plans out
  /// of order. Calvin mode always uses one executor thread.
  Machine(MachineId id, std::size_t num_machines, KvStore* store,
          const ProcedureRegistry* registry, SendFn send,
          SinkEpoch sticky_ttl = 2, int executor_workers = 1);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // ---- Work intake ----------------------------------------------------
  struct PlanItem {
    TxnPlan plan;
    TxnSpec spec;
  };
  /// T-Part mode: the machine's slice of sinking round `epoch`.
  void EnqueueTPartEpoch(SinkEpoch epoch, std::vector<PlanItem> items);
  /// Calvin mode: next relevant transaction in total order.
  void EnqueueCalvinTxn(TxnSpec spec);
  /// No more work will arrive; the executor drains and exits.
  void FinishEnqueue();

  // ---- Streaming intake (kSinkPlan/kPlanStreamEnd over the transport) --
  /// Bounds the number of sinking rounds in flight at this machine
  /// (disseminated but not fully executed). 0 = unbounded. Must be set
  /// before StartTPart().
  void set_epoch_queue_capacity(std::size_t capacity) {
    epoch_queue_capacity_ = capacity;
  }
  /// Called by the dissemination stage before shipping a round here;
  /// blocks while `capacity` rounds are in flight — this is how execution
  /// backpressures the scheduler. Returns true when the call had to wait.
  bool AcquireEpochCredit();
  /// Deepest the in-flight-round window ever got.
  std::size_t epoch_queue_high_water() const;

  /// Invoked (from an executor thread) with each transaction's id as its
  /// result is recorded — admission-to-commit latency tracking. Set before
  /// StartTPart(); clear (nullptr) after JoinExecutor().
  void set_commit_hook(std::function<void(TxnId)> hook) {
    commit_hook_ = std::move(hook);
  }

  void StartTPart();
  void StartCalvin();
  /// Joins the executor thread (service keeps running until Stop()).
  void JoinExecutor();
  /// Stops the service thread and releases all waiters.
  void Stop();

  /// Network intake (called by the cluster router).
  void Deliver(Message msg) { inbound_.Send(std::move(msg)); }

  /// Replay mode (§5.4): outbound messages are suppressed and the logged
  /// inbound messages must be re-Delivered by the caller.
  void set_replay(bool replay) { replay_ = replay; }

  /// Key -> home machine, required by Calvin mode (peer sets and local
  /// writes are derived from data placement).
  void set_locator(std::function<MachineId(ObjectKey)> locate) {
    locate_ = std::move(locate);
  }

  // ---- Results & state ------------------------------------------------
  MachineId id() const { return id_; }
  std::vector<TxnResult> TakeResults();
  KvStore& store() { return *store_; }
  CacheArea& cache() { return cache_; }
  StorageService& storage() { return storage_; }

  // ---- Recovery logs --------------------------------------------------
  struct RequestLogEntry {
    SinkEpoch epoch;
    PlanItem item;
  };
  const std::vector<RequestLogEntry>& request_log() const {
    return request_log_;
  }
  const std::vector<Message>& network_log() const { return network_log_; }

 private:
  struct EpochWork {
    SinkEpoch epoch = 0;
    std::vector<PlanItem> items;
  };

  void TPartWorkerLoop();
  void CalvinExecutorLoop();
  void ServiceLoop();
  void ExecutePlan(SinkEpoch epoch, const PlanItem& item);
  void ExecuteCalvin(const TxnSpec& spec);
  void SendOut(MachineId to, Message msg);

  // Streaming intake internals (service thread only, except credit
  // release which executors trigger).
  void HandleSinkPlan(Message msg);
  void EnqueueStreamEpoch(SinkEpoch epoch, std::vector<PlanItem> items);
  void OnPlanItemDone(SinkEpoch epoch);
  void ReleaseEpochCredit();

  // Awaits a response delivered by the service thread for `req_id`.
  Record AwaitResponse(std::uint64_t req_id);

  MachineId id_;
  std::size_t num_machines_;
  KvStore* store_;
  const ProcedureRegistry* registry_;
  SendFn send_;
  SinkEpoch sticky_ttl_;
  bool replay_ = false;
  std::function<MachineId(ObjectKey)> locate_;

  CacheArea cache_;
  StorageService storage_;
  Channel inbound_;

  // Executor work queue. T-Part work is flattened to (epoch, item) pairs
  // consumed in total order by the worker pool.
  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<std::pair<SinkEpoch, PlanItem>> tpart_work_;
  std::deque<TxnSpec> calvin_work_;
  bool finished_enqueue_ = false;
  SinkEpoch evicted_upto_ = 0;
  int executor_workers_ = 1;
  std::vector<std::thread> worker_pool_;
  std::mutex log_mu_;

  // Streaming intake: reliable transports may deliver rounds out of
  // order, but single-worker executors rely on FIFO epoch order (a popped
  // plan may only await versions produced by already-popped or remote
  // plans), so rounds are reordered and enqueued strictly from 1. Service
  // thread only.
  std::map<SinkEpoch, std::vector<PlanItem>> pending_stream_plans_;
  SinkEpoch next_stream_epoch_ = 1;
  SinkEpoch stream_final_epoch_ = 0;
  bool stream_end_seen_ = false;

  // Epoch flow-control credits: rounds disseminated but not fully
  // executed here. epoch_outstanding_ (under work_mu_) counts each
  // in-flight round's unfinished plans; the credit window is its own
  // lock so executors releasing never contend with intake.
  std::unordered_map<SinkEpoch, std::size_t> epoch_outstanding_;
  std::size_t epoch_queue_capacity_ = 0;
  mutable std::mutex credit_mu_;
  std::condition_variable credit_cv_;
  std::size_t epochs_in_flight_ = 0;
  std::size_t epoch_high_water_ = 0;
  bool credit_shutdown_ = false;

  std::function<void(TxnId)> commit_hook_;

  // Request/response plumbing for remote pulls & storage reads.
  std::mutex resp_mu_;
  std::condition_variable resp_cv_;
  std::unordered_map<std::uint64_t, Record> responses_;
  bool resp_shutdown_ = false;

  // Calvin peer-read buffer: values received per transaction.
  std::mutex peer_mu_;
  std::condition_variable peer_cv_;
  std::unordered_map<TxnId, std::unordered_map<ObjectKey, Record>> peer_reads_;
  bool peer_shutdown_ = false;

  // Parked remote cache pulls: (key, version) -> pending requests.
  std::map<std::pair<ObjectKey, TxnId>, std::vector<Message>> parked_pulls_;

  std::vector<TxnResult> results_;
  std::mutex results_mu_;

  std::vector<RequestLogEntry> request_log_;
  std::vector<Message> network_log_;

  std::thread executor_;
  std::thread service_;
  std::atomic<bool> service_running_{false};
};

}  // namespace tpart

#endif  // TPART_RUNTIME_MACHINE_H_
