#include "runtime/failure_detector.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tpart {

PhiAccrualDetector::PhiAccrualDetector(std::size_t num_machines,
                                       Options options)
    : options_(options), states_(num_machines) {
  options_.history = std::max<std::size_t>(options_.history, 4);
  for (State& s : states_) s.window.resize(options_.history, 0);
}

void PhiAccrualDetector::Observe(std::size_t machine, std::uint64_t now_us) {
  State& s = states_[machine];
  if (!s.excused && now_us > s.last_progress_us) {
    s.window[s.next] = now_us - s.last_progress_us;
    s.next = (s.next + 1) % s.window.size();
    s.count = std::min(s.count + 1, s.window.size());
  }
  s.excused = false;
  s.last_progress_us = now_us;
}

std::uint64_t PhiAccrualDetector::SilenceUs(std::size_t machine,
                                            std::uint64_t now_us) const {
  const State& s = states_[machine];
  return now_us > s.last_progress_us ? now_us - s.last_progress_us : 0;
}

void PhiAccrualDetector::MeanStd(const State& s, double* mean,
                                 double* std_out) const {
  // Before real samples arrive, assume the configured probe cadence.
  double m = static_cast<double>(options_.expected_interval_us);
  double var = 0.0;
  if (s.count > 0) {
    double sum = 0.0;
    for (std::size_t i = 0; i < s.count; ++i) {
      sum += static_cast<double>(s.window[i]);
    }
    m = sum / static_cast<double>(s.count);
    for (std::size_t i = 0; i < s.count; ++i) {
      const double d = static_cast<double>(s.window[i]) - m;
      var += d * d;
    }
    var /= static_cast<double>(s.count);
  }
  const double floor =
      options_.min_std_us > 0.0
          ? options_.min_std_us
          : std::max(static_cast<double>(options_.expected_interval_us) / 4.0,
                     200.0);
  *mean = m;
  *std_out = std::max(std::sqrt(var), floor);
}

double PhiAccrualDetector::Phi(std::size_t machine,
                               std::uint64_t now_us) const {
  const std::uint64_t elapsed = SilenceUs(machine, now_us);
  double mean, std;
  MeanStd(states_[machine], &mean, &std);
  const double z =
      (static_cast<double>(elapsed) - mean) / (std * std::sqrt(2.0));
  if (z <= 0.0) return 0.0;
  // P(inter-arrival > elapsed) for a normal tail; clamp the underflow
  // region so a long-dead machine reports a large finite phi.
  const double p_later = 0.5 * std::erfc(z);
  if (p_later < 1e-30) return 30.0;
  return -std::log10(p_later);
}

void PhiAccrualDetector::Excuse(std::size_t machine, std::uint64_t now_us) {
  State& s = states_[machine];
  s.excused = true;
  s.last_progress_us = now_us;
}

void PhiAccrualDetector::Reset(std::size_t machine, std::uint64_t now_us) {
  State& s = states_[machine];
  std::fill(s.window.begin(), s.window.end(), 0);
  s.next = 0;
  s.count = 0;
  s.excused = true;
  s.last_progress_us = now_us;
}

std::string PhiAccrualDetector::Describe(std::uint64_t now_us) const {
  std::ostringstream out;
  for (std::size_t m = 0; m < states_.size(); ++m) {
    double mean, std;
    MeanStd(states_[m], &mean, &std);
    if (m > 0) out << " ";
    out << "m" << m << "{phi=" << Phi(m, now_us)
        << " silence_us=" << SilenceUs(m, now_us)
        << " mean_us=" << mean << " std_us=" << std
        << " samples=" << states_[m].count << "}";
  }
  return out.str();
}

}  // namespace tpart
