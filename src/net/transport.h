#ifndef TPART_NET_TRANSPORT_H_
#define TPART_NET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "metrics/run_stats.h"
#include "net/faulty_network.h"
#include "net/packet_network.h"
#include "runtime/channel.h"

namespace tpart {

/// Which substrate carries inter-machine messages in a LocalCluster.
enum class TransportKind {
  /// Pass Message structs by value, no serialization (the seed behaviour;
  /// fastest, but exercises no wire code).
  kDirect,
  /// Serialize every message through the binary wire format and carry the
  /// bytes over in-process queues: the full encode/frame/decode path
  /// without sockets.
  kInProcess,
  /// Real loopback TCP sockets: listener + connection mesh per machine.
  kTcp,
};

struct TransportOptions {
  TransportKind kind = TransportKind::kDirect;
  /// Fault injection (drop/duplicate/delay). Requires a serialized
  /// substrate; when set with kDirect the transport upgrades to
  /// kInProcess, since faults act on wire packets.
  FaultOptions faults;
  /// Bound of each per-destination (in-process) or per-connection (TCP)
  /// packet queue; senders block — and are counted — beyond it.
  std::size_t queue_capacity = 4096;
  /// Reliability layer: unacked data packets are retransmitted after
  /// this long. Only meaningful under fault injection (nothing is lost
  /// otherwise, and sporadic spurious retries are harmless: receivers
  /// dedupe).
  int retry_timeout_us = 2000;
  /// Batched fan-out: executors hand their publish-phase messages to
  /// Transport::SendBatch, and serialized transports coalesce each
  /// destination's share into ONE wire frame with ONE link sequence
  /// number (resend/dedupe unit = the batch). Off = every message is its
  /// own packet, the pre-batching behaviour; outcomes are byte-identical
  /// either way (the batched-framing property test enforces it).
  bool batch_fanout = true;
};

/// Message conduit between the machines of a LocalCluster. Thread-safe:
/// every machine's executor/service threads send concurrently.
class Transport {
 public:
  using DeliverFn = std::function<void(Message)>;

  virtual ~Transport() = default;

  /// `deliver[m]` receives every message addressed to machine m; it may
  /// be invoked from transport threads and must be thread-safe.
  virtual void Start(std::vector<DeliverFn> deliver) = 0;

  virtual void Send(MachineId from, MachineId to, Message msg) = 0;

  /// Sends a burst of messages from one machine, preserving per-
  /// destination order. The base implementation forwards to Send one by
  /// one; serialized transports override it to coalesce each
  /// destination's share into a single batch frame (net/wire.h
  /// EncodeMessageBatch) carrying one link sequence number. The vector is
  /// borrowed scratch: the transport moves the messages out but leaves
  /// the (cleared-by-caller) vector's capacity with the caller.
  virtual void SendBatch(MachineId from,
                         std::vector<std::pair<MachineId, Message>>& msgs) {
    for (auto& [to, msg] : msgs) Send(from, to, std::move(msg));
  }

  /// Blocks until every message accepted so far has been delivered to
  /// its destination — under fault injection, until every data packet
  /// has been acknowledged. Call after executors drain, before reading
  /// final store state.
  virtual void Flush() = 0;

  /// Stops transport threads; idempotent.
  virtual void Stop() = 0;

  virtual TransportStats stats() const = 0;

  /// Advances the fault epoch link-level schedules (partitions, slow
  /// links) key off. Called by the dissemination stage as each sinking
  /// round ships; UINT64_MAX heals everything (the cluster does this
  /// before its final Flush so severed-window losses can be repaired).
  /// No-op for transports without a fault-injecting substrate.
  virtual void AdvanceFaultEpoch(std::uint64_t /*epoch*/) {}

  /// Human-readable per-link reliability state (retry backlog depth and
  /// oldest unacked age) for stall diagnostics; empty when the
  /// transport has no reliability layer or nothing is pending.
  virtual std::string LinkDiagnostic() const { return std::string(); }
};

/// The seed's zero-copy path: Send() delivers the struct synchronously.
class DirectTransport : public Transport {
 public:
  void Start(std::vector<DeliverFn> deliver) override;
  void Send(MachineId from, MachineId to, Message msg) override;
  void Flush() override {}
  void Stop() override {}
  TransportStats stats() const override;

 private:
  std::vector<DeliverFn> deliver_;
  mutable std::mutex stats_mu_;
  TransportStats stats_;
};

/// Serializes messages through net/wire.h and ships the bytes over a
/// PacketNetwork, with a reliability protocol that makes delivery
/// exactly-once even when the network drops, duplicates, or delays
/// packets: per-link sequence numbers, receiver-side dedupe, acks, and
/// timeout-driven retransmission. Self-sends round-trip through the
/// encoder (never the network) so the wire path is exercised uniformly.
class SerializedTransport : public Transport {
 public:
  SerializedTransport(std::unique_ptr<PacketNetwork> network,
                      int retry_timeout_us);
  ~SerializedTransport() override { Stop(); }

  void Start(std::vector<DeliverFn> deliver) override;
  void Send(MachineId from, MachineId to, Message msg) override;
  void SendBatch(MachineId from,
                 std::vector<std::pair<MachineId, Message>>& msgs) override;
  void Flush() override;
  void Stop() override;
  TransportStats stats() const override;
  void AdvanceFaultEpoch(std::uint64_t epoch) override;
  std::string LinkDiagnostic() const override;

 private:
  /// State of one directed link: sender-side retransmission buffer and
  /// receiver-side dedupe window.
  struct Link {
    std::uint64_t next_seq = 1;
    struct Unacked {
      std::string packet;  // full envelope, ready to retransmit
      std::chrono::steady_clock::time_point sent;
    };
    std::map<std::uint64_t, Unacked> unacked;
    std::uint64_t dedupe_floor = 0;  // all seqs <= floor delivered
    std::set<std::uint64_t> delivered_above;
  };

  void OnPacket(MachineId dst, std::string packet);
  void RetryLoop();
  void AckLoop();

  std::unique_ptr<PacketNetwork> network_;
  const int retry_timeout_us_;
  std::vector<DeliverFn> deliver_;
  std::size_t n_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex mu_;  // links_ and unacked_total_ (const diagnostics)
  std::condition_variable flush_cv_;
  std::vector<Link> links_;
  std::uint64_t unacked_total_ = 0;

  // Acks are flushed by a dedicated thread so packet-delivery threads
  // never block on a full outgoing queue (which could deadlock two
  // machines acking each other across full queues).
  BlockingQueue<std::tuple<MachineId, MachineId, std::string>> ack_queue_;
  std::thread ack_thread_;

  std::thread retry_thread_;
  std::atomic<bool> shutdown_{false};

  mutable std::mutex stats_mu_;
  TransportStats stats_;
};

/// Builds the transport selected by `options`.
std::unique_ptr<Transport> MakeTransport(const TransportOptions& options);

}  // namespace tpart

#endif  // TPART_NET_TRANSPORT_H_
