#ifndef TPART_NET_PACKET_NETWORK_H_
#define TPART_NET_PACKET_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "metrics/run_stats.h"
#include "runtime/channel.h"

namespace tpart {

/// Unreliable unidirectional datagram layer between machines: the
/// substrate under SerializedTransport's reliability protocol. A packet
/// is an opaque byte string (envelope + payload); implementations may
/// drop, duplicate, delay, or reorder packets (the faulty decorator
/// does), but must never corrupt or truncate one that is delivered.
class PacketNetwork {
 public:
  /// Invoked from network threads with the destination machine and one
  /// delivered packet. Must be thread-safe; concurrent invocations for
  /// different packets are allowed.
  using HandlerFn = std::function<void(MachineId dst, std::string packet)>;

  virtual ~PacketNetwork() = default;

  virtual void Start(std::size_t num_machines, HandlerFn handler) = 0;

  /// Queues `packet` for delivery from `from` to `to` (from != to). May
  /// block when the outgoing queue is at capacity (backpressure).
  virtual void Send(MachineId from, MachineId to, std::string packet) = 0;

  /// Best-effort quiesce: blocks until every packet this network decided
  /// to deliver has been handed to the handler. Does NOT guarantee
  /// end-to-end delivery under faults — that is the reliability layer's
  /// job (Transport::Flush).
  virtual void Drain() = 0;

  /// Stops all network threads; idempotent. Undelivered packets are
  /// discarded.
  virtual void Stop() = 0;

  virtual TransportStats stats() const = 0;

  /// Advances the fault epoch that epoch-keyed link schedules (severed
  /// partitions, flapping links, slow links) are evaluated against.
  /// No-op for lossless networks; the faulty decorator overrides it.
  virtual void SetEpoch(std::uint64_t /*epoch*/) {}
};

/// Lossless in-process implementation: one bounded BlockingQueue of byte
/// packets per destination machine plus a pump thread that hands packets
/// to the handler. Proves the encode/frame/decode path without sockets.
class InProcessPacketNetwork : public PacketNetwork {
 public:
  explicit InProcessPacketNetwork(std::size_t queue_capacity = 4096)
      : queue_capacity_(queue_capacity) {}
  ~InProcessPacketNetwork() override { Stop(); }

  void Start(std::size_t num_machines, HandlerFn handler) override;
  void Send(MachineId from, MachineId to, std::string packet) override;
  void Drain() override;
  void Stop() override;
  TransportStats stats() const override;

 private:
  struct Dest {
    explicit Dest(std::size_t capacity) : queue(capacity) {}
    BlockingQueue<std::string> queue;
    std::thread pump;
  };

  std::size_t queue_capacity_;
  HandlerFn handler_;
  std::vector<std::unique_ptr<Dest>> dests_;
  bool started_ = false;
  bool stopped_ = false;

  // Drain bookkeeping: a packet is accepted before it is enqueued and
  // handled after its handler call returns, so accepted_ == handled_
  // implies nothing is buffered or mid-handler.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::uint64_t accepted_ = 0;
  std::uint64_t handled_ = 0;

  mutable std::mutex stats_mu_;
  TransportStats stats_;
};

}  // namespace tpart

#endif  // TPART_NET_PACKET_NETWORK_H_
