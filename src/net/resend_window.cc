#include "net/resend_window.h"

namespace tpart {

void ResendWindow::Append(Message msg) {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_ += ApproxMessageBytes(msg);
  if (bytes_ > bytes_peak_) bytes_peak_ = bytes_;
  if (msg.epoch > last_epoch_) last_epoch_ = msg.epoch;
  window_.push_back(std::move(msg));
}

std::size_t ResendWindow::PruneThrough(SinkEpoch through) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t dropped = 0;
  while (!window_.empty() && window_.front().epoch <= through) {
    bytes_ -= ApproxMessageBytes(window_.front());
    window_.pop_front();
    ++dropped;
  }
  pruned_rounds_ += dropped;
  return dropped;
}

std::size_t ResendWindow::ForEachFrom(
    SinkEpoch resume, const std::function<void(const Message&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t replayed = 0;
  for (const Message& msg : window_) {
    if (msg.epoch < resume) continue;
    fn(msg);
    ++replayed;
  }
  return replayed;
}

SinkEpoch ResendWindow::front_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_.empty() ? 0 : window_.front().epoch;
}

SinkEpoch ResendWindow::last_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_epoch_;
}

bool ResendWindow::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_.empty();
}

std::size_t ResendWindow::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_.size();
}

std::size_t ResendWindow::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t ResendWindow::bytes_peak() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_peak_;
}

std::uint64_t ResendWindow::pruned_rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pruned_rounds_;
}

}  // namespace tpart
