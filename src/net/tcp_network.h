#ifndef TPART_NET_TCP_NETWORK_H_
#define TPART_NET_TCP_NETWORK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/packet_network.h"
#include "runtime/channel.h"

namespace tpart {

/// Real-socket packet network over loopback TCP: every machine owns a
/// listener, and every ordered machine pair (i, j) gets a dedicated
/// connection created by i (identified by a 4-byte hello). Packets are
/// length-prefixed frames (net/wire.h) on the stream; writes go through
/// a per-connection bounded queue drained by a writer thread doing
/// nonblocking sends (backpressure is counted, never dropped); a reader
/// thread per inbound connection reassembles frames and hands packets to
/// the handler.
class TcpPacketNetwork : public PacketNetwork {
 public:
  explicit TcpPacketNetwork(std::size_t queue_capacity = 4096)
      : queue_capacity_(queue_capacity) {}
  ~TcpPacketNetwork() override { Stop(); }

  void Start(std::size_t num_machines, HandlerFn handler) override;
  void Send(MachineId from, MachineId to, std::string packet) override;
  void Drain() override;
  void Stop() override;
  TransportStats stats() const override;

 private:
  struct Conn {
    explicit Conn(std::size_t capacity) : queue(capacity) {}
    int fd = -1;
    BlockingQueue<std::string> queue;  // framed packets awaiting write
    std::thread writer;
  };

  void WriterLoop(Conn* conn);
  void ReaderLoop(MachineId dst, int fd);

  std::size_t queue_capacity_;
  std::size_t n_ = 0;
  HandlerFn handler_;
  bool started_ = false;
  bool stopped_ = false;

  std::vector<int> listen_fds_;
  /// Outbound connection for each ordered pair, indexed [from * n + to];
  /// null on the diagonal.
  std::vector<std::unique_ptr<Conn>> conns_;
  std::vector<std::thread> acceptors_;
  std::mutex readers_mu_;
  std::vector<std::thread> readers_;
  std::vector<int> reader_fds_;

  // Drain bookkeeping (see InProcessPacketNetwork): equality of accepted
  // and handled counts means no packet is queued, in a socket buffer, or
  // mid-handler. Handled counts are reported by readers, so this covers
  // the full kernel path too.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::uint64_t accepted_ = 0;
  std::uint64_t handled_ = 0;

  mutable std::mutex stats_mu_;
  TransportStats stats_;
};

}  // namespace tpart

#endif  // TPART_NET_TCP_NETWORK_H_
