#include "net/packet_network.h"

#include "common/logging.h"

namespace tpart {

// An empty packet is the pump shutdown sentinel; real packets always
// carry at least an envelope byte (net/transport.cc).

void InProcessPacketNetwork::Start(std::size_t num_machines,
                                   HandlerFn handler) {
  TPART_CHECK(!started_) << "network started twice";
  started_ = true;
  handler_ = std::move(handler);
  dests_.reserve(num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) {
    dests_.push_back(std::make_unique<Dest>(queue_capacity_));
  }
  for (std::size_t m = 0; m < num_machines; ++m) {
    Dest* dest = dests_[m].get();
    dests_[m]->pump = std::thread([this, dest, m] {
      while (true) {
        std::string packet = dest->queue.Receive();
        if (packet.empty()) return;
        handler_(static_cast<MachineId>(m), std::move(packet));
        {
          std::lock_guard<std::mutex> lock(drain_mu_);
          ++handled_;
        }
        drain_cv_.notify_all();
      }
    });
  }
}

void InProcessPacketNetwork::Send(MachineId from, MachineId to,
                                  std::string packet) {
  TPART_CHECK(started_ && to < dests_.size())
      << "send to unknown machine " << to;
  TPART_CHECK(!packet.empty()) << "empty packet";
  (void)from;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++accepted_;
  }
  const std::size_t bytes = packet.size();
  const bool waited = dests_[to]->queue.Send(std::move(packet));
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.packets_out;
  ++stats_.packets_in;  // lossless: every accepted packet is delivered
  stats_.bytes_out += bytes;
  stats_.bytes_in += bytes;
  if (waited) ++stats_.backpressure_waits;
}

void InProcessPacketNetwork::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return handled_ == accepted_; });
}

void InProcessPacketNetwork::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (auto& dest : dests_) {
    dest->queue.Send(std::string());  // shutdown sentinel
  }
  for (auto& dest : dests_) {
    if (dest->pump.joinable()) dest->pump.join();
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (const auto& dest : dests_) {
    stats_.queue_high_water =
        std::max<std::uint64_t>(stats_.queue_high_water,
                                dest->queue.high_water());
  }
}

TransportStats InProcessPacketNetwork::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  TransportStats out = stats_;
  if (!stopped_) {
    for (const auto& dest : dests_) {
      out.queue_high_water = std::max<std::uint64_t>(out.queue_high_water,
                                                     dest->queue.high_water());
    }
  }
  return out;
}

}  // namespace tpart
