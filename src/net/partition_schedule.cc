#include "net/partition_schedule.h"

#include <algorithm>
#include <sstream>

namespace tpart {

namespace {

bool Contains(const std::vector<MachineId>& group, MachineId m) {
  return std::find(group.begin(), group.end(), m) != group.end();
}

/// Membership with complement semantics: an empty group_b matches every
/// machine below n that is not in group_a.
bool InB(const PartitionEvent& ev, MachineId m, std::size_t n) {
  if (!ev.group_b.empty()) return Contains(ev.group_b, m);
  return m < static_cast<MachineId>(n) && !Contains(ev.group_a, m);
}

bool WindowActive(std::uint64_t from_epoch, std::uint64_t heal_epoch,
                  std::uint64_t epoch) {
  return epoch >= from_epoch && epoch < heal_epoch;
}

Result<std::uint64_t> ParseUint(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty number");
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad number: " + s);
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return Status::InvalidArgument("number overflow: " + s);
    }
    v = v * 10 + digit;
  }
  return v;
}

Result<std::vector<MachineId>> ParseIdList(const std::string& s) {
  if (!s.empty() && s.back() == ',') {
    return Status::InvalidArgument("trailing comma in id list: " + s);
  }
  std::vector<MachineId> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    auto id = ParseUint(s.substr(pos, comma - pos));
    if (!id.ok()) return id.status();
    out.push_back(static_cast<MachineId>(*id));
    pos = comma + 1;
  }
  return out;
}

/// Parses the "@E" / "@E..E'" window tail shared by both spec forms.
Status ParseWindow(const std::string& s, std::uint64_t* from_epoch,
                   std::uint64_t* heal_epoch) {
  const std::size_t dots = s.find("..");
  if (dots == std::string::npos) {
    auto from = ParseUint(s);
    if (!from.ok()) return from.status();
    *from_epoch = *from;
    *heal_epoch = std::numeric_limits<std::uint64_t>::max();
    return Status::Ok();
  }
  auto from = ParseUint(s.substr(0, dots));
  if (!from.ok()) return from.status();
  auto heal = ParseUint(s.substr(dots + 2));
  if (!heal.ok()) return heal.status();
  if (*heal <= *from) {
    return Status::InvalidArgument("window heals before it starts: " + s);
  }
  *from_epoch = *from;
  *heal_epoch = *heal;
  return Status::Ok();
}

void AppendWindow(std::ostringstream& out, std::uint64_t from_epoch,
                  std::uint64_t heal_epoch) {
  out << "@" << from_epoch << "..";
  if (heal_epoch != std::numeric_limits<std::uint64_t>::max()) {
    out << heal_epoch;
  }
}

void AppendIds(std::ostringstream& out, const std::vector<MachineId>& ids) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << ",";
    out << ids[i];
  }
}

}  // namespace

bool PartitionSchedule::Severed(MachineId from, MachineId to,
                                std::uint64_t epoch, std::size_t n) const {
  for (const PartitionEvent& ev : partitions) {
    if (!WindowActive(ev.from_epoch, ev.heal_epoch, epoch)) continue;
    const bool a_to_b = Contains(ev.group_a, from) && InB(ev, to, n);
    if (a_to_b) return true;
    if (ev.symmetric && Contains(ev.group_a, to) && InB(ev, from, n)) {
      return true;
    }
  }
  return false;
}

bool PartitionSchedule::FlappedDown(MachineId from, MachineId to,
                                    std::uint64_t epoch,
                                    std::uint64_t link_seq) const {
  for (const FlappingLink& ev : flapping) {
    if (ev.from != from || ev.to != to) continue;
    if (!WindowActive(ev.from_epoch, ev.heal_epoch, epoch)) continue;
    const std::uint64_t period = std::max<std::uint64_t>(ev.period, 1);
    if (link_seq % period >= std::min(ev.up, period)) return true;
  }
  return false;
}

int PartitionSchedule::SlowDelayUs(MachineId from, MachineId to,
                                   std::uint64_t epoch) const {
  int worst = 0;
  for (const SlowLinkEvent& ev : slow_links) {
    if (ev.from != from || ev.to != to) continue;
    if (!WindowActive(ev.from_epoch, ev.heal_epoch, epoch)) continue;
    worst = std::max(worst, ev.extra_delay_us);
  }
  return worst;
}

bool PartitionSchedule::OpensSeverWindowIn(std::uint64_t after,
                                           std::uint64_t through) const {
  for (const PartitionEvent& ev : partitions) {
    if (ev.from_epoch > after && ev.from_epoch <= through) return true;
  }
  return false;
}

std::uint64_t PartitionSchedule::HealAllActiveAt(std::uint64_t epoch) const {
  // Fixpoint: healing one window can land inside another that opens
  // exactly at the first one's heal epoch. Each pass strictly raises
  // `epoch`, so this terminates after at most |partitions| passes.
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (const PartitionEvent& ev : partitions) {
      if (WindowActive(ev.from_epoch, ev.heal_epoch, epoch) &&
          ev.heal_epoch > epoch) {
        epoch = ev.heal_epoch;
        advanced = true;
      }
    }
  }
  return epoch;
}

std::uint64_t PartitionSchedule::MaxPartitionSpan() const {
  std::uint64_t span = 0;
  for (const PartitionEvent& ev : partitions) {
    if (ev.heal_epoch == std::numeric_limits<std::uint64_t>::max()) continue;
    span = std::max(span, ev.heal_epoch - ev.from_epoch);
  }
  return span;
}

std::string PartitionSchedule::Summary() const {
  std::ostringstream out;
  bool first = true;
  const auto sep = [&] {
    if (!first) out << " ";
    first = false;
  };
  for (const PartitionEvent& ev : partitions) {
    sep();
    out << "part{";
    AppendIds(out, ev.group_a);
    out << (ev.symmetric ? "|" : ">");
    AppendIds(out, ev.group_b);
    out << "}";
    AppendWindow(out, ev.from_epoch, ev.heal_epoch);
  }
  for (const SlowLinkEvent& ev : slow_links) {
    sep();
    out << "slow{" << ev.from << "->" << ev.to << ":" << ev.extra_delay_us
        << "us}";
    AppendWindow(out, ev.from_epoch, ev.heal_epoch);
  }
  for (const FlappingLink& ev : flapping) {
    sep();
    out << "flap{" << ev.from << "->" << ev.to << ":" << ev.up << "/"
        << ev.period << "}";
    AppendWindow(out, ev.from_epoch, ev.heal_epoch);
  }
  if (first) out << "none";
  return out.str();
}

Result<PartitionEvent> ParsePartitionSpec(const std::string& spec) {
  const std::size_t at = spec.find('@');
  if (at == std::string::npos) {
    return Status::InvalidArgument("partition spec needs @window: " + spec);
  }
  const std::string groups = spec.substr(0, at);
  PartitionEvent ev;
  std::size_t split = groups.find('|');
  if (split == std::string::npos) {
    split = groups.find('>');
    if (split == std::string::npos) {
      return Status::InvalidArgument("partition spec needs A|B or A>B: " +
                                     spec);
    }
    ev.symmetric = false;
  }
  auto a = ParseIdList(groups.substr(0, split));
  if (!a.ok()) return a.status();
  if (a->empty()) {
    return Status::InvalidArgument("partition group A is empty: " + spec);
  }
  ev.group_a = std::move(*a);
  auto b = ParseIdList(groups.substr(split + 1));
  if (!b.ok()) return b.status();
  ev.group_b = std::move(*b);
  for (MachineId m : ev.group_b) {
    if (Contains(ev.group_a, m)) {
      return Status::InvalidArgument("partition groups overlap: " + spec);
    }
  }
  Status window =
      ParseWindow(spec.substr(at + 1), &ev.from_epoch, &ev.heal_epoch);
  if (!window.ok()) return window;
  return ev;
}

Result<SlowLinkEvent> ParseSlowLinkSpec(const std::string& spec) {
  const std::size_t arrow = spec.find("->");
  const std::size_t at = spec.find('@');
  if (arrow == std::string::npos || at == std::string::npos || at < arrow) {
    return Status::InvalidArgument("slow-link spec needs m->n@window: " +
                                   spec);
  }
  SlowLinkEvent ev;
  auto from = ParseUint(spec.substr(0, arrow));
  if (!from.ok()) return from.status();
  auto to = ParseUint(spec.substr(arrow + 2, at - arrow - 2));
  if (!to.ok()) return to.status();
  ev.from = static_cast<MachineId>(*from);
  ev.to = static_cast<MachineId>(*to);
  if (ev.from == ev.to) {
    return Status::InvalidArgument("slow link to self: " + spec);
  }
  std::string window = spec.substr(at + 1);
  const std::size_t colon = window.find(':');
  if (colon != std::string::npos) {
    auto delay = ParseUint(window.substr(colon + 1));
    if (!delay.ok()) return delay.status();
    if (*delay == 0 || *delay > 60'000'000) {
      return Status::InvalidArgument("slow-link delay out of range: " + spec);
    }
    ev.extra_delay_us = static_cast<int>(*delay);
    window = window.substr(0, colon);
  }
  Status st = ParseWindow(window, &ev.from_epoch, &ev.heal_epoch);
  if (!st.ok()) return st;
  return ev;
}

}  // namespace tpart
