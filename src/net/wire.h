#ifndef TPART_NET_WIRE_H_
#define TPART_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "runtime/channel.h"
#include "scheduler/push_plan.h"
#include "storage/record.h"

namespace tpart {

/// Compact binary wire format for everything that crosses a machine
/// boundary: forward-pushed record versions, cache pulls, storage reads,
/// write-backs, Calvin peer reads (runtime/channel.h Message), and sunk
/// push plans (scheduler/push_plan.h) for scheduler->machine distribution
/// in a real deployment. Integers are LEB128 varints (signed values
/// zigzag-coded); every encoded object starts with a format-version byte
/// so the format can evolve.
inline constexpr std::uint8_t kWireFormatVersion = 1;

// ---------------------------------------------------------------------
// Primitive encoding
// ---------------------------------------------------------------------

/// Appends primitive values to a byte string.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutU8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }

  void PutVarint(std::uint64_t v) {
    while (v >= 0x80) {
      out_->push_back(static_cast<char>(v | 0x80));
      v >>= 7;
    }
    out_->push_back(static_cast<char>(v));
  }

  void PutZigzag(std::int64_t v) {
    PutVarint((static_cast<std::uint64_t>(v) << 1) ^
              static_cast<std::uint64_t>(v >> 63));
  }

 private:
  std::string* out_;
};

/// Bounds-checked reader over an encoded byte string. Every getter
/// returns false on truncation instead of reading past the end.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool GetU8(std::uint8_t* v) {
    if (pos_ >= data_.size()) return false;
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }

  bool GetVarint(std::uint64_t* v) {
    std::uint64_t out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) return false;
      const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
      out |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        *v = out;
        return true;
      }
    }
    return false;  // > 10 bytes: malformed
  }

  bool GetZigzag(std::int64_t* v) {
    std::uint64_t raw;
    if (!GetVarint(&raw)) return false;
    *v = static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return true;
  }

  bool GetBytes(std::size_t n, std::string* out) {
    if (n > remaining()) return false;
    out->assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }

  /// Zero-copy variant: a view into the underlying buffer, valid only
  /// while that buffer lives (batch decoding slices sub-messages out of
  /// one contiguous payload without copying).
  bool GetView(std::size_t n, std::string_view* out) {
    if (n > remaining()) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Record / Message / SinkPlan encoding
// ---------------------------------------------------------------------

void EncodeRecord(const Record& record, WireWriter& w);
bool DecodeRecord(WireReader& r, Record* record);

/// Transaction request on the wire (plan dissemination ships the specs of
/// each sunk round alongside the plan). node_weight travels as its IEEE
/// bit pattern; non-finite weights are rejected on decode.
void EncodeTxnSpec(const TxnSpec& spec, WireWriter& w);
bool DecodeTxnSpec(WireReader& r, TxnSpec* spec);

/// Serializes `msg` (without framing).
std::string EncodeMessage(const Message& msg);

/// Appends EncodeMessage's output to `*out` (which may already hold
/// data). Lets batch encoding reuse one buffer instead of allocating a
/// string per message.
void EncodeMessageTo(const Message& msg, std::string* out);

/// Parses a payload produced by EncodeMessage. Rejects unknown format
/// versions, out-of-range enum values, truncated input, and trailing
/// garbage.
Result<Message> DecodeMessage(std::string_view bytes);

/// Batched wire encode (the per-round frame of the hot-path refactor):
/// one payload carrying every message a sender emits to one destination
/// in one burst — version byte, message count, then length-prefixed
/// EncodeMessage entries in send order. The transport gives the whole
/// batch ONE link sequence number, so the reliability layer's resend and
/// dedupe unit (and therefore the resend window granularity) is the
/// round-batch, not the individual message.
std::string EncodeMessageBatch(const std::vector<Message>& msgs);

/// Parses an EncodeMessageBatch payload, enforcing the same strictness
/// as DecodeMessage on every entry plus the batch envelope itself.
Result<std::vector<Message>> DecodeMessageBatch(std::string_view bytes);

/// Serializes one sinking round's full push plan (§3.4): what a central
/// scheduler would broadcast to machines in a real deployment.
std::string EncodeSinkPlan(const SinkPlan& plan);
Result<SinkPlan> DecodeSinkPlan(std::string_view bytes);

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Frames are [u32 LE payload length][u32 LE FNV-1a checksum][payload];
/// the checksum catches corruption, the length bound catches garbage
/// headers before they trigger huge allocations.
inline constexpr std::size_t kFrameHeaderBytes = 8;
inline constexpr std::size_t kMaxFramePayloadBytes = 1u << 26;  // 64 MiB

std::uint32_t WireChecksum(std::string_view payload);

/// Appends one framed payload to `out`.
void AppendFrame(std::string_view payload, std::string* out);

/// Reassembles frames from an arbitrary-chunked byte stream (the TCP
/// receive path). Once a corrupt frame is seen the buffer stays in the
/// error state: a stream with a bad length or checksum cannot be resynced.
class FrameBuffer {
 public:
  void Append(std::string_view data) { buf_.append(data); }

  /// Next complete frame's payload; nullopt when more bytes are needed;
  /// error status on a corrupt stream.
  Result<std::optional<std::string>> Next();

  std::size_t buffered_bytes() const { return buf_.size() - off_; }

 private:
  std::string buf_;
  std::size_t off_ = 0;
  bool corrupt_ = false;
};

}  // namespace tpart

#endif  // TPART_NET_WIRE_H_
