#include "net/wire.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

namespace tpart {

namespace {

// Enum ceilings for decode validation.
constexpr std::uint8_t kMaxMessageType =
    static_cast<std::uint8_t>(Message::Type::kShutdown);
constexpr std::uint8_t kMaxReadSourceKind =
    static_cast<std::uint8_t>(ReadSourceKind::kCacheRemote);

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("truncated ") + what);
}

void PutU32Le(std::uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t GetU32Le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

// ---------------------------------------------------------------------
// Record
// ---------------------------------------------------------------------

void EncodeRecord(const Record& record, WireWriter& w) {
  w.PutU8(record.is_absent() ? 1 : 0);
  if (record.is_absent()) return;
  w.PutVarint(record.num_fields());
  for (std::size_t i = 0; i < record.num_fields(); ++i) {
    w.PutZigzag(record.field(i));
  }
  w.PutVarint(record.padding_bytes());
}

bool DecodeRecord(WireReader& r, Record* record) {
  std::uint8_t absent;
  if (!r.GetU8(&absent) || absent > 1) return false;
  if (absent) {
    *record = Record::Absent();
    return true;
  }
  std::uint64_t num_fields;
  if (!r.GetVarint(&num_fields)) return false;
  // Each field takes >= 1 encoded byte: cheap sanity bound against
  // garbage counts causing huge allocations.
  if (num_fields > r.remaining()) return false;
  std::vector<std::int64_t> fields(static_cast<std::size_t>(num_fields));
  for (auto& f : fields) {
    if (!r.GetZigzag(&f)) return false;
  }
  std::uint64_t padding;
  if (!r.GetVarint(&padding)) return false;
  if (padding > (std::uint64_t{1} << 32)) return false;
  Record out(fields.size(), static_cast<std::size_t>(padding));
  for (std::size_t i = 0; i < fields.size(); ++i) out.set_field(i, fields[i]);
  *record = std::move(out);
  return true;
}

// ---------------------------------------------------------------------
// TxnSpec
// ---------------------------------------------------------------------

namespace {

template <typename KeyVec>
void EncodeKeySet(const KeyVec& keys, WireWriter& w) {
  w.PutVarint(keys.size());
  for (const ObjectKey k : keys) w.PutVarint(k);
}

template <typename KeyVec>
bool DecodeKeySet(WireReader& r, KeyVec* keys) {
  std::uint64_t n;
  if (!r.GetVarint(&n) || n > r.remaining()) return false;
  keys->resize(static_cast<std::size_t>(n));
  for (auto& k : *keys) {
    std::uint64_t u;
    if (!r.GetVarint(&u)) return false;
    k = u;
  }
  return true;
}

}  // namespace

void EncodeTxnSpec(const TxnSpec& spec, WireWriter& w) {
  w.PutVarint(spec.id);
  w.PutVarint(spec.proc);
  w.PutVarint(spec.params.size());
  for (const std::int64_t p : spec.params) w.PutZigzag(p);
  EncodeKeySet(spec.rw.reads, w);
  EncodeKeySet(spec.rw.writes, w);
  w.PutU8(spec.is_dummy ? 1 : 0);
  w.PutVarint(std::bit_cast<std::uint64_t>(spec.node_weight));
}

bool DecodeTxnSpec(WireReader& r, TxnSpec* spec) {
  std::uint64_t u, n;
  if (!r.GetVarint(&u)) return false;
  spec->id = u;
  if (!r.GetVarint(&u)) return false;
  spec->proc = static_cast<ProcId>(u);
  if (!r.GetVarint(&n) || n > r.remaining()) return false;
  spec->params.resize(static_cast<std::size_t>(n));
  for (auto& p : spec->params) {
    if (!r.GetZigzag(&p)) return false;
  }
  if (!DecodeKeySet(r, &spec->rw.reads)) return false;
  if (!DecodeKeySet(r, &spec->rw.writes)) return false;
  std::uint8_t b;
  if (!r.GetU8(&b) || b > 1) return false;
  spec->is_dummy = b != 0;
  if (!r.GetVarint(&u)) return false;
  spec->node_weight = std::bit_cast<double>(u);
  // NaN would break round-trip identity (NaN != NaN) and no scheduler
  // emits one; infinities would poison partition balance sums.
  if (!std::isfinite(spec->node_weight)) return false;
  return true;
}

// ---------------------------------------------------------------------
// Message
// ---------------------------------------------------------------------

std::string EncodeMessage(const Message& msg) {
  std::string out;
  EncodeMessageTo(msg, &out);
  return out;
}

void EncodeMessageTo(const Message& msg, std::string* outp) {
  std::string& out = *outp;
  // Header + fixed fields fit in ~64 bytes; the variable parts are the
  // value record, the kv list, the plan blob, and the specs. Reserving
  // the estimate up front makes the common encode a single allocation.
  out.reserve(out.size() + 64 + 10 * msg.value.num_fields() +
              24 * msg.kvs.size() + msg.plan_bytes.size() +
              48 * msg.specs.size());
  WireWriter w(&out);
  w.PutU8(kWireFormatVersion);
  w.PutU8(static_cast<std::uint8_t>(msg.type));
  w.PutVarint(msg.key);
  w.PutVarint(msg.version);
  w.PutVarint(msg.replaces);
  w.PutVarint(msg.dst_txn);
  w.PutU8(static_cast<std::uint8_t>((msg.invalidate ? 1 : 0) |
                                    (msg.sticky ? 2 : 0)));
  w.PutVarint(msg.total_reads);
  w.PutVarint(msg.awaits);
  w.PutVarint(msg.epoch);
  w.PutVarint(msg.reply_to);
  w.PutVarint(msg.req_id);
  w.PutVarint(msg.txn);
  w.PutVarint(msg.trace_ctx);
  w.PutVarint(msg.term);
  EncodeRecord(msg.value, w);
  w.PutVarint(msg.kvs.size());
  for (const auto& [key, value] : msg.kvs) {
    w.PutVarint(key);
    EncodeRecord(value, w);
  }
  w.PutVarint(msg.plan_bytes.size());
  out.append(msg.plan_bytes);
  w.PutVarint(msg.specs.size());
  for (const TxnSpec& spec : msg.specs) EncodeTxnSpec(spec, w);
}

std::string EncodeMessageBatch(const std::vector<Message>& msgs) {
  std::string out;
  out.reserve(16 + 96 * msgs.size());
  WireWriter w(&out);
  w.PutU8(kWireFormatVersion);
  w.PutVarint(msgs.size());
  std::string scratch;  // reused across entries: one allocation amortized
  for (const Message& msg : msgs) {
    scratch.clear();
    EncodeMessageTo(msg, &scratch);
    w.PutVarint(scratch.size());
    out.append(scratch);
  }
  return out;
}

Result<std::vector<Message>> DecodeMessageBatch(std::string_view bytes) {
  WireReader r(bytes);
  std::uint8_t version;
  if (!r.GetU8(&version)) return Truncated("batch header");
  if (version != kWireFormatVersion) {
    return Status::InvalidArgument("unknown wire format version " +
                                   std::to_string(version));
  }
  std::uint64_t count;
  if (!r.GetVarint(&count)) return Truncated("batch count");
  if (count > r.remaining()) {
    return Status::InvalidArgument("batch count exceeds payload");
  }
  std::vector<Message> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t len;
    if (!r.GetVarint(&len)) return Truncated("batch entry length");
    std::string_view entry;
    if (!r.GetView(static_cast<std::size_t>(len), &entry)) {
      return Status::InvalidArgument("batch entry length exceeds payload");
    }
    Result<Message> msg = DecodeMessage(entry);
    if (!msg.ok()) return msg.status();
    out.push_back(std::move(*msg));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after batch");
  }
  return out;
}

Result<Message> DecodeMessage(std::string_view bytes) {
  WireReader r(bytes);
  std::uint8_t version;
  if (!r.GetU8(&version)) return Truncated("message header");
  if (version != kWireFormatVersion) {
    return Status::InvalidArgument("unknown wire format version " +
                                   std::to_string(version));
  }
  std::uint8_t type;
  if (!r.GetU8(&type)) return Truncated("message type");
  if (type > kMaxMessageType) {
    return Status::InvalidArgument("bad message type " +
                                   std::to_string(type));
  }
  Message msg;
  msg.type = static_cast<Message::Type>(type);
  std::uint64_t u;
  if (!r.GetVarint(&u)) return Truncated("key");
  msg.key = u;
  if (!r.GetVarint(&u)) return Truncated("version");
  msg.version = u;
  if (!r.GetVarint(&u)) return Truncated("replaces");
  msg.replaces = u;
  if (!r.GetVarint(&u)) return Truncated("dst_txn");
  msg.dst_txn = u;
  std::uint8_t flags;
  if (!r.GetU8(&flags)) return Truncated("flags");
  if (flags > 3) return Status::InvalidArgument("bad message flags");
  msg.invalidate = (flags & 1) != 0;
  msg.sticky = (flags & 2) != 0;
  if (!r.GetVarint(&u)) return Truncated("total_reads");
  msg.total_reads = static_cast<std::uint32_t>(u);
  if (!r.GetVarint(&u)) return Truncated("awaits");
  msg.awaits = static_cast<std::uint32_t>(u);
  if (!r.GetVarint(&u)) return Truncated("epoch");
  msg.epoch = u;
  if (!r.GetVarint(&u)) return Truncated("reply_to");
  msg.reply_to = static_cast<MachineId>(u);
  if (!r.GetVarint(&u)) return Truncated("req_id");
  msg.req_id = u;
  if (!r.GetVarint(&u)) return Truncated("txn");
  msg.txn = u;
  if (!r.GetVarint(&u)) return Truncated("trace_ctx");
  msg.trace_ctx = u;
  if (!r.GetVarint(&u)) return Truncated("term");
  msg.term = u;
  if (!DecodeRecord(r, &msg.value)) return Truncated("value record");
  std::uint64_t num_kvs;
  if (!r.GetVarint(&num_kvs)) return Truncated("kv count");
  if (num_kvs > r.remaining()) {
    return Status::InvalidArgument("kv count exceeds payload");
  }
  msg.kvs.reserve(static_cast<std::size_t>(num_kvs));
  for (std::uint64_t i = 0; i < num_kvs; ++i) {
    std::uint64_t key;
    if (!r.GetVarint(&key)) return Truncated("kv key");
    Record value;
    if (!DecodeRecord(r, &value)) return Truncated("kv record");
    msg.kvs.emplace_back(key, std::move(value));
  }
  std::uint64_t plan_len;
  if (!r.GetVarint(&plan_len)) return Truncated("plan length");
  if (plan_len > r.remaining()) {
    return Status::InvalidArgument("plan length exceeds payload");
  }
  if (!r.GetBytes(static_cast<std::size_t>(plan_len), &msg.plan_bytes)) {
    return Truncated("plan bytes");
  }
  std::uint64_t num_specs;
  if (!r.GetVarint(&num_specs)) return Truncated("spec count");
  if (num_specs > r.remaining()) {
    return Status::InvalidArgument("spec count exceeds payload");
  }
  msg.specs.resize(static_cast<std::size_t>(num_specs));
  for (auto& spec : msg.specs) {
    if (!DecodeTxnSpec(r, &spec)) return Truncated("txn spec");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after message");
  }
  return msg;
}

// ---------------------------------------------------------------------
// SinkPlan
// ---------------------------------------------------------------------

namespace {

void EncodeReadStep(const ReadStep& s, WireWriter& w) {
  w.PutVarint(s.key);
  w.PutU8(static_cast<std::uint8_t>(s.kind));
  w.PutVarint(s.src_txn);
  w.PutVarint(s.src_machine);
  w.PutVarint(s.cache_epoch);
  w.PutVarint(s.storage_min_epoch);
  w.PutU8(static_cast<std::uint8_t>((s.invalidate_entry ? 1 : 0) |
                                    (s.sticky_hint ? 2 : 0)));
  w.PutVarint(s.provider_txn);
  w.PutVarint(s.entry_total_reads);
}

bool DecodeReadStep(WireReader& r, ReadStep* s) {
  std::uint64_t u;
  std::uint8_t b;
  if (!r.GetVarint(&u)) return false;
  s->key = u;
  if (!r.GetU8(&b) || b > kMaxReadSourceKind) return false;
  s->kind = static_cast<ReadSourceKind>(b);
  if (!r.GetVarint(&u)) return false;
  s->src_txn = u;
  if (!r.GetVarint(&u)) return false;
  s->src_machine = static_cast<MachineId>(u);
  if (!r.GetVarint(&u)) return false;
  s->cache_epoch = u;
  if (!r.GetVarint(&u)) return false;
  s->storage_min_epoch = u;
  if (!r.GetU8(&b) || b > 3) return false;
  s->invalidate_entry = (b & 1) != 0;
  s->sticky_hint = (b & 2) != 0;
  if (!r.GetVarint(&u)) return false;
  s->provider_txn = u;
  if (!r.GetVarint(&u)) return false;
  s->entry_total_reads = static_cast<std::uint32_t>(u);
  return true;
}

void EncodeTxnPlan(const TxnPlan& p, WireWriter& w) {
  w.PutVarint(p.txn);
  w.PutVarint(p.machine);
  w.PutVarint(p.num_reads);
  w.PutVarint(p.num_writes);
  w.PutVarint(p.reads.size());
  for (const ReadStep& s : p.reads) EncodeReadStep(s, w);
  w.PutVarint(p.pushes.size());
  for (const PushStep& s : p.pushes) {
    w.PutVarint(s.key);
    w.PutVarint(s.dst_txn);
    w.PutVarint(s.dst_machine);
    w.PutVarint(s.version_txn);
  }
  w.PutVarint(p.local_versions.size());
  for (const LocalVersionStep& s : p.local_versions) {
    w.PutVarint(s.key);
    w.PutVarint(s.dst_txn);
    w.PutVarint(s.version_txn);
  }
  w.PutVarint(p.cache_publishes.size());
  for (const CachePublishStep& s : p.cache_publishes) {
    w.PutVarint(s.key);
    w.PutVarint(s.epoch);
  }
  w.PutVarint(p.write_backs.size());
  for (const WriteBackStep& s : p.write_backs) {
    w.PutVarint(s.key);
    w.PutVarint(s.home);
    w.PutVarint(s.version_txn);
    w.PutU8(s.make_sticky ? 1 : 0);
    w.PutVarint(s.readers_to_await);
    w.PutVarint(s.replaces_version);
  }
}

bool DecodeTxnPlan(WireReader& r, TxnPlan* p) {
  std::uint64_t u, n;
  if (!r.GetVarint(&u)) return false;
  p->txn = u;
  if (!r.GetVarint(&u)) return false;
  p->machine = static_cast<MachineId>(u);
  if (!r.GetVarint(&u)) return false;
  p->num_reads = static_cast<std::uint32_t>(u);
  if (!r.GetVarint(&u)) return false;
  p->num_writes = static_cast<std::uint32_t>(u);

  if (!r.GetVarint(&n) || n > r.remaining()) return false;
  p->reads.resize(static_cast<std::size_t>(n));
  for (auto& s : p->reads) {
    if (!DecodeReadStep(r, &s)) return false;
  }
  if (!r.GetVarint(&n) || n > r.remaining()) return false;
  p->pushes.resize(static_cast<std::size_t>(n));
  for (auto& s : p->pushes) {
    if (!r.GetVarint(&u)) return false;
    s.key = u;
    if (!r.GetVarint(&u)) return false;
    s.dst_txn = u;
    if (!r.GetVarint(&u)) return false;
    s.dst_machine = static_cast<MachineId>(u);
    if (!r.GetVarint(&u)) return false;
    s.version_txn = u;
  }
  if (!r.GetVarint(&n) || n > r.remaining()) return false;
  p->local_versions.resize(static_cast<std::size_t>(n));
  for (auto& s : p->local_versions) {
    if (!r.GetVarint(&u)) return false;
    s.key = u;
    if (!r.GetVarint(&u)) return false;
    s.dst_txn = u;
    if (!r.GetVarint(&u)) return false;
    s.version_txn = u;
  }
  if (!r.GetVarint(&n) || n > r.remaining()) return false;
  p->cache_publishes.resize(static_cast<std::size_t>(n));
  for (auto& s : p->cache_publishes) {
    if (!r.GetVarint(&u)) return false;
    s.key = u;
    if (!r.GetVarint(&u)) return false;
    s.epoch = u;
  }
  if (!r.GetVarint(&n) || n > r.remaining()) return false;
  p->write_backs.resize(static_cast<std::size_t>(n));
  for (auto& s : p->write_backs) {
    std::uint8_t b;
    if (!r.GetVarint(&u)) return false;
    s.key = u;
    if (!r.GetVarint(&u)) return false;
    s.home = static_cast<MachineId>(u);
    if (!r.GetVarint(&u)) return false;
    s.version_txn = u;
    if (!r.GetU8(&b) || b > 1) return false;
    s.make_sticky = b != 0;
    if (!r.GetVarint(&u)) return false;
    s.readers_to_await = static_cast<std::uint32_t>(u);
    if (!r.GetVarint(&u)) return false;
    s.replaces_version = u;
  }
  return true;
}

}  // namespace

std::string EncodeSinkPlan(const SinkPlan& plan) {
  std::string out;
  // A plan txn with a handful of read/push/write-back steps encodes to
  // roughly 100 bytes; one up-front reservation covers the whole round.
  out.reserve(16 + 112 * plan.txns.size());
  WireWriter w(&out);
  w.PutU8(kWireFormatVersion);
  w.PutVarint(plan.epoch);
  w.PutVarint(plan.txns.size());
  for (const TxnPlan& p : plan.txns) EncodeTxnPlan(p, w);
  return out;
}

Result<SinkPlan> DecodeSinkPlan(std::string_view bytes) {
  WireReader r(bytes);
  std::uint8_t version;
  if (!r.GetU8(&version)) return Truncated("plan header");
  if (version != kWireFormatVersion) {
    return Status::InvalidArgument("unknown wire format version " +
                                   std::to_string(version));
  }
  SinkPlan plan;
  std::uint64_t u, n;
  if (!r.GetVarint(&u)) return Truncated("plan epoch");
  plan.epoch = u;
  if (!r.GetVarint(&n)) return Truncated("plan txn count");
  if (n > r.remaining()) {
    return Status::InvalidArgument("plan txn count exceeds payload");
  }
  plan.txns.resize(static_cast<std::size_t>(n));
  for (auto& p : plan.txns) {
    if (!DecodeTxnPlan(r, &p)) return Truncated("txn plan");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after plan");
  }
  return plan;
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

std::uint32_t WireChecksum(std::string_view payload) {
  // FNV-1a, 32-bit.
  std::uint32_t h = 2166136261u;
  for (const char c : payload) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

void AppendFrame(std::string_view payload, std::string* out) {
  PutU32Le(static_cast<std::uint32_t>(payload.size()), out);
  PutU32Le(WireChecksum(payload), out);
  out->append(payload);
}

Result<std::optional<std::string>> FrameBuffer::Next() {
  if (corrupt_) {
    return Status::InvalidArgument("frame stream is corrupt");
  }
  if (buf_.size() - off_ < kFrameHeaderBytes) {
    // Compact lazily so a long stream doesn't keep consumed bytes alive.
    if (off_ > 0 && off_ >= buf_.size() / 2) {
      buf_.erase(0, off_);
      off_ = 0;
    }
    return std::optional<std::string>{};
  }
  const std::uint32_t len = GetU32Le(buf_.data() + off_);
  const std::uint32_t checksum = GetU32Le(buf_.data() + off_ + 4);
  if (len > kMaxFramePayloadBytes) {
    corrupt_ = true;
    return Status::InvalidArgument("frame length " + std::to_string(len) +
                                   " exceeds limit");
  }
  if (buf_.size() - off_ < kFrameHeaderBytes + len) {
    return std::optional<std::string>{};
  }
  std::string payload = buf_.substr(off_ + kFrameHeaderBytes, len);
  if (WireChecksum(payload) != checksum) {
    corrupt_ = true;
    return Status::InvalidArgument("frame checksum mismatch");
  }
  off_ += kFrameHeaderBytes + len;
  if (off_ >= buf_.size() / 2) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  return std::optional<std::string>(std::move(payload));
}

}  // namespace tpart
