#ifndef TPART_NET_FAULTY_NETWORK_H_
#define TPART_NET_FAULTY_NETWORK_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "net/packet_network.h"
#include "net/partition_schedule.h"

namespace tpart {

/// Fault-injection knobs. Fault decisions are a pure function of
/// (seed, from, to, per-link send index, fault epoch), so a given
/// traffic pattern meets the same drop/duplicate/delay/sever/slow
/// pattern on every run regardless of thread interleaving.
struct FaultOptions {
  std::uint64_t seed = 0x7ea57;
  /// Per-packet probabilities; applied to data AND ack packets.
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double delay_prob = 0.0;
  /// Delayed packets are released after a seeded uniform delay in
  /// [1, max_delay_us].
  int max_delay_us = 2000;
  /// Link-level schedule: partition windows, flapping links, and
  /// gray-failure slow links keyed to the fault epoch the cluster
  /// advances (PacketNetwork::SetEpoch).
  PartitionSchedule partition;

  bool Any() const {
    return drop_prob > 0 || duplicate_prob > 0 || delay_prob > 0 ||
           partition.Any();
  }
};

/// Decorator that makes any PacketNetwork unreliable: drops, duplicates,
/// and delays packets per FaultOptions. The reliability layer above
/// (SerializedTransport's seq/ack/retry protocol) must mask every fault
/// this class injects — the fault-injection tests assert exactly that.
class FaultyPacketNetwork : public PacketNetwork {
 public:
  FaultyPacketNetwork(std::unique_ptr<PacketNetwork> inner,
                      FaultOptions options);
  ~FaultyPacketNetwork() override { Stop(); }

  void Start(std::size_t num_machines, HandlerFn handler) override;
  void Send(MachineId from, MachineId to, std::string packet) override;
  void Drain() override;
  void Stop() override;
  TransportStats stats() const override;

  /// Advances the fault epoch the link schedule is evaluated against.
  /// Monotonic (stale advances are ignored); UINT64_MAX heals every
  /// scheduled fault. Forwarded to the inner network for decorator
  /// stacking.
  void SetEpoch(std::uint64_t epoch) override;

 private:
  struct Delayed {
    std::chrono::steady_clock::time_point release;
    std::uint64_t order;  // tie-break so the heap is a stable queue
    MachineId from;
    MachineId to;
    std::string packet;
    bool operator>(const Delayed& other) const {
      return release != other.release ? release > other.release
                                      : order > other.order;
    }
  };

  void TimerLoop();

  std::unique_ptr<PacketNetwork> inner_;
  FaultOptions options_;
  bool started_ = false;
  bool stopped_ = false;
  /// Current fault epoch (sink epoch being disseminated). Atomic: read
  /// by every sending thread, advanced by the dissemination stage.
  std::atomic<std::uint64_t> fault_epoch_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::uint64_t> link_seq_;  // per ordered (from, to) pair
  std::size_t n_ = 0;
  std::priority_queue<Delayed, std::vector<Delayed>, std::greater<>>
      delayed_;
  std::uint64_t delay_order_ = 0;
  bool releasing_ = false;  // timer is mid-release (guards Drain)
  bool timer_stop_ = false;
  std::thread timer_;

  mutable std::mutex stats_mu_;
  TransportStats stats_;
};

}  // namespace tpart

#endif  // TPART_NET_FAULTY_NETWORK_H_
