#include "net/faulty_network.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace tpart {

FaultyPacketNetwork::FaultyPacketNetwork(
    std::unique_ptr<PacketNetwork> inner, FaultOptions options)
    : inner_(std::move(inner)), options_(options) {}

void FaultyPacketNetwork::Start(std::size_t num_machines,
                                HandlerFn handler) {
  TPART_CHECK(!started_) << "network started twice";
  started_ = true;
  n_ = num_machines;
  link_seq_.assign(n_ * n_, 0);
  inner_->Start(num_machines, std::move(handler));
  timer_ = std::thread([this] { TimerLoop(); });
}

void FaultyPacketNetwork::Send(MachineId from, MachineId to,
                               std::string packet) {
  TPART_CHECK(started_ && from < n_ && to < n_);
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = link_seq_[from * n_ + to]++;
  }
  // Link-schedule faults first: a severed or flapped-down link swallows
  // the packet before any per-packet randomness, so runs without a
  // schedule keep their exact historical drop/dup/delay pattern.
  const std::uint64_t epoch = fault_epoch_.load(std::memory_order_acquire);
  const PartitionSchedule& sched = options_.partition;
  if (sched.Severed(from, to, epoch, n_) ||
      sched.FlappedDown(from, to, epoch, seq)) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.faults_severed;
    return;
  }
  // One seeded generator per (link, send index): fault pattern is
  // independent of cross-link thread interleaving.
  Rng rng(options_.seed ^ (static_cast<std::uint64_t>(from) << 40) ^
          (static_cast<std::uint64_t>(to) << 20) ^ seq);
  if (rng.NextBool(options_.drop_prob)) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.faults_dropped;
    return;
  }
  const int copies = rng.NextBool(options_.duplicate_prob) ? 2 : 1;
  if (copies == 2) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.faults_duplicated;
  }
  for (int c = 0; c < copies; ++c) {
    std::string copy = (c + 1 < copies) ? packet : std::move(packet);
    std::uint64_t delay_us = 0;
    if (rng.NextBool(options_.delay_prob)) {
      delay_us = 1 + rng.NextBelow(static_cast<std::uint64_t>(
                         std::max(options_.max_delay_us, 1)));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.faults_delayed;
    }
    // Gray failure: an active slow-link window inflates every packet on
    // the link by a seeded amount on top of any probabilistic delay.
    if (const int slow_us = sched.SlowDelayUs(from, to, epoch);
        slow_us > 0) {
      delay_us += 1 + rng.NextBelow(static_cast<std::uint64_t>(slow_us));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.faults_slowed;
    }
    if (delay_us > 0) {
      const auto delay = std::chrono::microseconds(delay_us);
      {
        std::lock_guard<std::mutex> lock(mu_);
        delayed_.push(Delayed{std::chrono::steady_clock::now() + delay,
                              delay_order_++, from, to, std::move(copy)});
      }
      cv_.notify_all();
    } else {
      inner_->Send(from, to, std::move(copy));
    }
  }
}

void FaultyPacketNetwork::SetEpoch(std::uint64_t epoch) {
  // Monotonic max: recovery re-ships and racing stages may advance out
  // of order, and healing must never be rolled back.
  std::uint64_t cur = fault_epoch_.load(std::memory_order_relaxed);
  while (epoch > cur && !fault_epoch_.compare_exchange_weak(
                            cur, epoch, std::memory_order_release,
                            std::memory_order_relaxed)) {
  }
  inner_->SetEpoch(epoch);
}

void FaultyPacketNetwork::TimerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (timer_stop_) return;
    if (delayed_.empty()) {
      cv_.wait(lock, [&] { return timer_stop_ || !delayed_.empty(); });
      continue;
    }
    const auto next_release = delayed_.top().release;
    if (std::chrono::steady_clock::now() < next_release) {
      // cv_status dropped on purpose: timeout and notify both loop back
      // to re-derive the next release from the queue.
      (void)cv_.wait_until(lock, next_release);
      continue;
    }
    Delayed item = delayed_.top();
    delayed_.pop();
    releasing_ = true;
    lock.unlock();
    inner_->Send(item.from, item.to, std::move(item.packet));
    lock.lock();
    releasing_ = false;
    cv_.notify_all();  // wake Drain when the heap empties
  }
}

void FaultyPacketNetwork::Drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock,
             [&] { return (delayed_.empty() && !releasing_) || timer_stop_; });
  }
  inner_->Drain();
}

void FaultyPacketNetwork::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    timer_stop_ = true;
  }
  cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  inner_->Stop();
}

TransportStats FaultyPacketNetwork::stats() const {
  TransportStats out = inner_->stats();
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.MergeFrom(stats_);
  return out;
}

}  // namespace tpart
