#ifndef TPART_NET_PARTITION_SCHEDULE_H_
#define TPART_NET_PARTITION_SCHEDULE_H_

// Seeded link-level fault schedules: network partitions that sever and
// heal whole machine groups at sink-epoch boundaries, flapping links
// that oscillate per packet, and gray-failure slow links whose latency
// is inflated by a seeded per-packet amount. The schedule is pure data
// — FaultyPacketNetwork consults it on every Send against the fault
// epoch the dissemination stage advances — so a given (schedule, seed,
// traffic) triple produces the same fault pattern on every run and on
// every transport substrate.
//
// Epoch semantics: an event is active while
//   from_epoch <= current fault epoch < heal_epoch
// where the fault epoch is the sink epoch of the round currently being
// disseminated. Healing at UINT64_MAX means "never during the run" (the
// cluster heals all links before its final flush so the reliability
// layer can complete delivery of everything a severed window swallowed).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace tpart {

/// One partition window: every link from group_a to group_b (and, when
/// symmetric, back) is severed while the window is active. An empty
/// group_b means "every machine not in group_a" — the usual two-way
/// split. Asymmetric windows model one-way link loss (A can hear B but
/// not the reverse).
struct PartitionEvent {
  std::vector<MachineId> group_a;
  std::vector<MachineId> group_b;  // empty = complement of group_a
  std::uint64_t from_epoch = 0;
  std::uint64_t heal_epoch = std::numeric_limits<std::uint64_t>::max();
  bool symmetric = true;
};

/// Gray failure: the from->to link stays up but every packet it carries
/// is delayed by a seeded uniform amount in [1, extra_delay_us] while
/// the window is active. Detectors must NOT declare the destination
/// dead — it is slow, not gone.
struct SlowLinkEvent {
  MachineId from = 0;
  MachineId to = 0;
  std::uint64_t from_epoch = 0;
  std::uint64_t heal_epoch = std::numeric_limits<std::uint64_t>::max();
  int extra_delay_us = 1500;
};

/// Flapping link: while the window is active the from->to link passes
/// the first `up` of every `period` packets and swallows the rest, so
/// connectivity oscillates at packet granularity (the retry layer must
/// squeeze everything through the up-slots).
struct FlappingLink {
  MachineId from = 0;
  MachineId to = 0;
  std::uint64_t from_epoch = 0;
  std::uint64_t heal_epoch = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t period = 4;
  std::uint64_t up = 2;
};

/// The full link-fault schedule one run executes. Plain aggregate so
/// chaos derivation, CLI parsing, and tests can build it directly.
struct PartitionSchedule {
  std::vector<PartitionEvent> partitions;
  std::vector<SlowLinkEvent> slow_links;
  std::vector<FlappingLink> flapping;

  bool Any() const {
    return !partitions.empty() || !slow_links.empty() || !flapping.empty();
  }

  /// True when the from->to link is severed at `epoch` by a partition
  /// window. `n` bounds the complement of a one-sided group.
  bool Severed(MachineId from, MachineId to, std::uint64_t epoch,
               std::size_t n) const;

  /// True when the from->to link is flapped down for the link's
  /// `link_seq`-th packet at `epoch`.
  bool FlappedDown(MachineId from, MachineId to, std::uint64_t epoch,
                   std::uint64_t link_seq) const;

  /// Max extra delay (us) a slow-link window inflicts on from->to at
  /// `epoch`; 0 when no window is active.
  int SlowDelayUs(MachineId from, MachineId to, std::uint64_t epoch) const;

  /// True when any partition window opens in (after, through]. The
  /// cluster quiesces in-flight rounds before crossing such a boundary:
  /// a window "starting at epoch E" severs only traffic of rounds >= E,
  /// never responses still owed for earlier rounds — otherwise those
  /// orphaned rounds would pin epoch credits and the heal epoch could
  /// never be disseminated.
  bool OpensSeverWindowIn(std::uint64_t after, std::uint64_t through) const;

  /// Smallest epoch >= `epoch` at which no partition window is active
  /// (chasing windows that open exactly where an earlier one heals).
  /// The cluster advances the fault clock here on coordinator failover:
  /// an outage plus election takes long enough that any sever window
  /// active at the crash has healed by the time the successor probes
  /// watermarks — without this, probes to a severed machine could never
  /// be answered, because the heal epoch only advances from the (parked)
  /// dissemination loop.
  std::uint64_t HealAllActiveAt(std::uint64_t epoch) const;

  /// Largest epoch span any partition window covers (0 when none). The
  /// cluster checks this against its epoch-queue capacity: a window
  /// wider than the in-flight credit window would stall dissemination
  /// before the heal epoch could ever be reached.
  std::uint64_t MaxPartitionSpan() const;

  /// Human-readable one-line description ("part{0|1,2}@3..5 slow{0->1}@2..")
  /// for post-mortems and chaos summaries.
  std::string Summary() const;
};

/// Parses "A|B@E..E'" (symmetric) or "A>B@E..E'" (asymmetric, A's
/// packets to B are lost) where A and B are comma-separated machine
/// ids and B may be empty (complement). "0,1|2@3..5" severs both
/// directions between {0,1} and {2} for epochs 3 and 4.
Result<PartitionEvent> ParsePartitionSpec(const std::string& spec);

/// Parses "m->n@E", "m->n@E..E'", or "m->n@E..E':D" (D = max extra
/// delay in microseconds; default 1500).
Result<SlowLinkEvent> ParseSlowLinkSpec(const std::string& spec);

}  // namespace tpart

#endif  // TPART_NET_PARTITION_SCHEDULE_H_
