#ifndef TPART_NET_RESEND_WINDOW_H_
#define TPART_NET_RESEND_WINDOW_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "common/types.h"
#include "runtime/channel.h"

namespace tpart {

/// The dissemination stage's retained history of sink-plan rounds, kept
/// so a recovered machine can be re-sent every round it missed while
/// down (the end-of-stream marker is tracked separately by the cluster).
///
/// Without pruning this window grows with run length — exactly the
/// resident-memory failure mode periodic checkpointing exists to bound.
/// Once every machine holds a checkpoint at epoch >= E, no recovery can
/// ever need rounds <= E again (a machine resumes strictly after its own
/// checkpoint epoch), so PruneThrough(E) drops them.
///
/// Internally synchronized: the dissemination stage appends while the
/// watchdog thread replays from it during a recovery.
class ResendWindow {
 public:
  /// Appends one disseminated round (or the end marker).
  void Append(Message msg);

  /// Drops every retained round with epoch <= `through`. Returns the
  /// number of rounds dropped by this call.
  std::size_t PruneThrough(SinkEpoch through);

  /// Replays every retained round with epoch >= `resume`, in order.
  /// Returns the number of rounds passed to `fn`.
  std::size_t ForEachFrom(SinkEpoch resume,
                          const std::function<void(const Message&)>& fn) const;

  /// Epoch of the oldest retained round; 0 when empty.
  SinkEpoch front_epoch() const;

  /// Highest epoch ever appended (survives pruning; 0 before any append).
  /// A failed-over coordinator uses it as the boundary between rounds the
  /// old leader already shipped and rounds it must ship fresh.
  SinkEpoch last_epoch() const;

  bool empty() const;
  std::size_t size() const;
  std::size_t bytes() const;
  std::size_t bytes_peak() const;
  std::uint64_t pruned_rounds() const;

 private:
  mutable std::mutex mu_;
  std::deque<Message> window_;
  SinkEpoch last_epoch_ = 0;
  std::size_t bytes_ = 0;
  std::size_t bytes_peak_ = 0;
  std::uint64_t pruned_rounds_ = 0;
};

}  // namespace tpart

#endif  // TPART_NET_RESEND_WINDOW_H_
