#include "net/transport.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "net/tcp_network.h"
#include "net/wire.h"
#include "obs/trace.h"

namespace tpart {

namespace {

constexpr std::uint8_t kDataPacket = 0;
constexpr std::uint8_t kAckPacket = 1;
/// Batched round frame: same envelope as kDataPacket (from + one seq for
/// the whole batch) but the payload is an EncodeMessageBatch blob. The
/// reliability layer treats the batch as one unit: one ack, one resend.
constexpr std::uint8_t kBatchPacket = 2;
constexpr std::uint8_t kMaxPacketKind = kBatchPacket;

std::string MakeAckPacket(MachineId acker, std::uint64_t seq) {
  std::string out;
  WireWriter w(&out);
  w.PutU8(kAckPacket);
  w.PutVarint(acker);
  w.PutVarint(seq);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// DirectTransport
// ---------------------------------------------------------------------

void DirectTransport::Start(std::vector<DeliverFn> deliver) {
  deliver_ = std::move(deliver);
}

void DirectTransport::Send(MachineId from, MachineId to, Message msg) {
  (void)from;
  TPART_CHECK(to < deliver_.size()) << "send to unknown machine " << to;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.messages_sent;
    ++stats_.messages_delivered;
  }
  deliver_[to](std::move(msg));
}

TransportStats DirectTransport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

// ---------------------------------------------------------------------
// SerializedTransport
// ---------------------------------------------------------------------

SerializedTransport::SerializedTransport(
    std::unique_ptr<PacketNetwork> network, int retry_timeout_us)
    : network_(std::move(network)),
      retry_timeout_us_(std::max(retry_timeout_us, 100)) {}

void SerializedTransport::Start(std::vector<DeliverFn> deliver) {
  TPART_CHECK(!started_) << "transport started twice";
  started_ = true;
  deliver_ = std::move(deliver);
  n_ = deliver_.size();
  links_.resize(n_ * n_);
  network_->Start(n_, [this](MachineId dst, std::string packet) {
    OnPacket(dst, std::move(packet));
  });
  ack_thread_ = std::thread([this] { AckLoop(); });
  retry_thread_ = std::thread([this] { RetryLoop(); });
}

void SerializedTransport::Send(MachineId from, MachineId to, Message msg) {
  TPART_CHECK(started_ && from < n_ && to < n_)
      << "bad send " << from << "->" << to;
  std::string payload = EncodeMessage(msg);
  TPART_TRACE_SPAN("net_send", "net",
                   {{"from", from}, {"to", to}, {"bytes", payload.size()}});
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.messages_sent;
  }
  if (from == to) {
    // Self-sends skip the network (and the reliability protocol) but
    // still round-trip the encoder, keeping the wire path uniform.
    Result<Message> decoded = DecodeMessage(payload);
    TPART_CHECK(decoded.ok())
        << "self-send decode failed: " << decoded.status().ToString();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.messages_delivered;
      stats_.bytes_out += payload.size();
      stats_.bytes_in += payload.size();
    }
    deliver_[to](std::move(*decoded));
    return;
  }
  std::string packet;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Link& link = links_[from * n_ + to];
    const std::uint64_t seq = link.next_seq++;
    WireWriter w(&packet);
    w.PutU8(kDataPacket);
    w.PutVarint(from);
    w.PutVarint(seq);
    packet.append(payload);
    link.unacked[seq] =
        Link::Unacked{packet, std::chrono::steady_clock::now()};
    ++unacked_total_;
  }
  network_->Send(from, to, std::move(packet));
}

void SerializedTransport::SendBatch(
    MachineId from, std::vector<std::pair<MachineId, Message>>& msgs) {
  TPART_CHECK(started_ && from < n_) << "bad batch send from " << from;
  // Group per destination, preserving the caller's per-destination order.
  // Per-thread scratch: group vectors keep their capacity across bursts.
  thread_local std::vector<std::vector<Message>> by_dest;
  if (by_dest.size() < n_) by_dest.resize(n_);
  for (auto& g : by_dest) g.clear();
  for (auto& [to, msg] : msgs) {
    TPART_CHECK(to < n_) << "bad batch send " << from << "->" << to;
    by_dest[to].push_back(std::move(msg));
  }
  for (std::size_t to = 0; to < n_; ++to) {
    std::vector<Message>& group = by_dest[to];
    if (group.empty()) continue;
    if (group.size() == 1) {
      // A singleton batch would only add envelope overhead; use the
      // plain path so the wire traffic matches message-level framing.
      Send(from, static_cast<MachineId>(to), std::move(group.front()));
      continue;
    }
    std::string payload = EncodeMessageBatch(group);
    TPART_TRACE_SPAN("net_send_batch", "net",
                     {{"from", from},
                      {"to", to},
                      {"msgs", group.size()},
                      {"bytes", payload.size()}});
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.messages_sent += group.size();
      ++stats_.batches_sent;
      stats_.batched_messages += group.size();
    }
    if (from == to) {
      // Self-sends skip the network but round-trip the batch codec, so
      // the batched wire path is exercised uniformly too.
      Result<std::vector<Message>> decoded = DecodeMessageBatch(payload);
      TPART_CHECK(decoded.ok())
          << "self-send batch decode failed: " << decoded.status().ToString();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.messages_delivered += decoded->size();
        stats_.bytes_out += payload.size();
        stats_.bytes_in += payload.size();
      }
      for (Message& m : *decoded) deliver_[to](std::move(m));
      continue;
    }
    // One link sequence number covers the whole batch: the reliability
    // layer acks, dedupes, and retransmits it as a single unit, so the
    // resend-window granularity becomes the round-batch.
    std::string packet;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Link& link = links_[from * n_ + to];
      const std::uint64_t seq = link.next_seq++;
      WireWriter w(&packet);
      w.PutU8(kBatchPacket);
      w.PutVarint(from);
      w.PutVarint(seq);
      packet.append(payload);
      link.unacked[seq] =
          Link::Unacked{packet, std::chrono::steady_clock::now()};
      ++unacked_total_;
    }
    network_->Send(from, static_cast<MachineId>(to), std::move(packet));
  }
}

void SerializedTransport::OnPacket(MachineId dst, std::string packet) {
  WireReader r(packet);
  std::uint8_t kind;
  std::uint64_t src64, seq;
  TPART_CHECK(r.GetU8(&kind) && kind <= kMaxPacketKind &&
              r.GetVarint(&src64) && r.GetVarint(&seq) && src64 < n_)
      << "malformed packet envelope";
  const auto src = static_cast<MachineId>(src64);

  if (kind == kAckPacket) {
    // `src` is the acker = the data receiver; `dst` is the data sender.
    std::lock_guard<std::mutex> lock(mu_);
    Link& link = links_[dst * n_ + src];
    if (link.unacked.erase(seq) > 0) {
      if (--unacked_total_ == 0) flush_cv_.notify_all();
    }
    return;
  }

  const std::string_view payload(packet.data() + (packet.size() -
                                                  r.remaining()),
                                 r.remaining());
  Link& link = links_[src * n_ + dst];
  bool duplicate;
  {
    std::lock_guard<std::mutex> lock(mu_);
    duplicate = seq <= link.dedupe_floor ||
                link.delivered_above.count(seq) > 0;
    if (!duplicate) {
      link.delivered_above.insert(seq);
      while (link.delivered_above.count(link.dedupe_floor + 1) > 0) {
        link.delivered_above.erase(++link.dedupe_floor);
      }
    }
  }
  if (duplicate) {
    TPART_TRACE(Instant("dup_dropped", "net",
                        {{"src", src}, {"dst", dst}, {"seq", seq}}));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.duplicates_dropped;
  } else if (kind == kBatchPacket) {
    TPART_TRACE_SPAN("net_recv_batch", "net",
                     {{"src", src}, {"dst", dst}, {"bytes", payload.size()}});
    Result<std::vector<Message>> msgs = DecodeMessageBatch(payload);
    TPART_CHECK(msgs.ok()) << "batch decode failed for packet " << src << "->"
                           << dst << " seq " << seq << ": "
                           << msgs.status().ToString();
    const std::size_t count = msgs->size();
    for (Message& m : *msgs) deliver_[dst](std::move(m));
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.messages_delivered += count;
  } else {
    TPART_TRACE_SPAN("net_recv", "net",
                     {{"src", src}, {"dst", dst}, {"bytes", payload.size()}});
    Result<Message> msg = DecodeMessage(payload);
    TPART_CHECK(msg.ok()) << "wire decode failed for packet " << src << "->"
                          << dst << " seq " << seq << ": "
                          << msg.status().ToString();
    deliver_[dst](std::move(*msg));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.messages_delivered;
  }
  // Ack even duplicates: the first ack may itself have been dropped.
  ack_queue_.Send({dst, src, MakeAckPacket(dst, seq)});
}

void SerializedTransport::AckLoop() {
  while (true) {
    auto [from, to, packet] = ack_queue_.Receive();
    if (packet.empty()) return;  // shutdown sentinel
    network_->Send(from, to, std::move(packet));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.acks_sent;
  }
}

void SerializedTransport::RetryLoop() {
  const auto timeout = std::chrono::microseconds(retry_timeout_us_);
  while (!shutdown_.load()) {
    std::this_thread::sleep_for(timeout / 2);
    std::vector<std::tuple<MachineId, MachineId, std::string>> resend;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto now = std::chrono::steady_clock::now();
      for (std::size_t from = 0; from < n_; ++from) {
        for (std::size_t to = 0; to < n_; ++to) {
          for (auto& [seq, unacked] : links_[from * n_ + to].unacked) {
            if (now - unacked.sent >= timeout) {
              unacked.sent = now;
              resend.emplace_back(static_cast<MachineId>(from),
                                  static_cast<MachineId>(to),
                                  unacked.packet);
            }
          }
        }
      }
    }
    for (auto& [from, to, packet] : resend) {
      if (shutdown_.load()) return;
      TPART_TRACE(Instant("retry", "net", {{"from", from}, {"to", to}}));
      network_->Send(from, to, std::move(packet));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.retries;
    }
  }
}

void SerializedTransport::Flush() {
  if (!started_) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    flush_cv_.wait(lock, [&] { return unacked_total_ == 0; });
  }
  network_->Drain();
}

void SerializedTransport::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  shutdown_.store(true);
  if (retry_thread_.joinable()) retry_thread_.join();
  ack_queue_.Send({0, 0, std::string()});
  if (ack_thread_.joinable()) ack_thread_.join();
  network_->Stop();
}

TransportStats SerializedTransport::stats() const {
  TransportStats out = network_->stats();
  std::lock_guard<std::mutex> lock(stats_mu_);
  out.MergeFrom(stats_);
  return out;
}

void SerializedTransport::AdvanceFaultEpoch(std::uint64_t epoch) {
  network_->SetEpoch(epoch);
}

std::string SerializedTransport::LinkDiagnostic() const {
  std::ostringstream out;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  out << "unacked_total=" << unacked_total_;
  for (std::size_t from = 0; from < n_; ++from) {
    for (std::size_t to = 0; to < n_; ++to) {
      const Link& link = links_[from * n_ + to];
      if (link.unacked.empty()) continue;
      const auto oldest_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - link.unacked.begin()->second.sent)
              .count();
      out << " link[" << from << "->" << to
          << "]: backlog=" << link.unacked.size()
          << " oldest_sent_us=" << oldest_us;
    }
  }
  return out.str();
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

std::unique_ptr<Transport> MakeTransport(const TransportOptions& options) {
  TransportKind kind = options.kind;
  if (kind == TransportKind::kDirect && options.faults.Any()) {
    kind = TransportKind::kInProcess;  // faults act on wire packets
  }
  if (kind == TransportKind::kDirect) {
    return std::make_unique<DirectTransport>();
  }
  std::unique_ptr<PacketNetwork> network;
  if (kind == TransportKind::kTcp) {
    network = std::make_unique<TcpPacketNetwork>(options.queue_capacity);
  } else {
    network = std::make_unique<InProcessPacketNetwork>(options.queue_capacity);
  }
  if (options.faults.Any()) {
    network = std::make_unique<FaultyPacketNetwork>(std::move(network),
                                                    options.faults);
  }
  return std::make_unique<SerializedTransport>(std::move(network),
                                               options.retry_timeout_us);
}

}  // namespace tpart
