#include "net/tcp_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>

#include "common/logging.h"
#include "net/wire.h"

namespace tpart {

namespace {

int MakeListener(std::uint16_t* port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  TPART_CHECK(fd >= 0) << "socket: " << std::strerror(errno);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  TPART_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
              0)
      << "bind: " << std::strerror(errno);
  TPART_CHECK(::listen(fd, SOMAXCONN) == 0)
      << "listen: " << std::strerror(errno);
  socklen_t len = sizeof addr;
  TPART_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
              0)
      << "getsockname: " << std::strerror(errno);
  *port_out = ::ntohs(addr.sin_port);
  return fd;
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool ReadExactly(int fd, char* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t nr = ::recv(fd, buf + got, len - got, 0);
    if (nr > 0) {
      got += static_cast<std::size_t>(nr);
    } else if (nr < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

bool WriteExactly(int fd, const char* buf, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t nw = ::send(fd, buf + sent, len - sent, MSG_NOSIGNAL);
    if (nw > 0) {
      sent += static_cast<std::size_t>(nw);
    } else if (nw < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

void TcpPacketNetwork::Start(std::size_t num_machines, HandlerFn handler) {
  TPART_CHECK(!started_) << "network started twice";
  started_ = true;
  n_ = num_machines;
  handler_ = std::move(handler);
  if (n_ <= 1) return;

  std::vector<std::uint16_t> ports(n_);
  listen_fds_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    listen_fds_[i] = MakeListener(&ports[i]);
  }

  // Acceptors: machine i expects one inbound connection from every peer,
  // identified by a 4-byte little-endian hello.
  for (std::size_t i = 0; i < n_; ++i) {
    acceptors_.emplace_back([this, i] {
      for (std::size_t k = 0; k + 1 < n_; ++k) {
        const int cfd = ::accept(listen_fds_[i], nullptr, nullptr);
        if (cfd < 0) return;  // listener closed during shutdown
        char hello[4];
        if (!ReadExactly(cfd, hello, sizeof hello)) {
          ::close(cfd);
          return;
        }
        SetNoDelay(cfd);
        std::lock_guard<std::mutex> lock(readers_mu_);
        reader_fds_.push_back(cfd);
        readers_.emplace_back([this, i, cfd] {
          ReaderLoop(static_cast<MachineId>(i), cfd);
        });
      }
    });
  }

  // Connect the full mesh; the listeners' backlog absorbs ordering.
  conns_.resize(n_ * n_);
  for (std::size_t from = 0; from < n_; ++from) {
    for (std::size_t to = 0; to < n_; ++to) {
      if (from == to) continue;
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      TPART_CHECK(fd >= 0) << "socket: " << std::strerror(errno);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
      addr.sin_port = ::htons(ports[to]);
      TPART_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof addr) == 0)
          << "connect to machine " << to << ": " << std::strerror(errno);
      char hello[4];
      for (int b = 0; b < 4; ++b) {
        hello[b] = static_cast<char>((from >> (8 * b)) & 0xFF);
      }
      TPART_CHECK(WriteExactly(fd, hello, sizeof hello)) << "hello failed";
      SetNoDelay(fd);
      // Writers use nonblocking sends + poll; see WriterLoop.
      ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
      auto conn = std::make_unique<Conn>(queue_capacity_);
      conn->fd = fd;
      conn->writer = std::thread([this, c = conn.get()] { WriterLoop(c); });
      conns_[from * n_ + to] = std::move(conn);
    }
  }

  // Start returns only with the mesh fully established.
  for (auto& a : acceptors_) a.join();
  acceptors_.clear();
}

void TcpPacketNetwork::Send(MachineId from, MachineId to,
                            std::string packet) {
  TPART_CHECK(started_ && from < n_ && to < n_ && from != to)
      << "bad tcp send " << from << "->" << to;
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++accepted_;
  }
  std::string frame;
  frame.reserve(packet.size() + kFrameHeaderBytes);
  AppendFrame(packet, &frame);
  Conn* conn = conns_[from * n_ + to].get();
  const bool waited = conn->queue.Send(std::move(frame));
  if (waited) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.backpressure_waits;
  }
}

void TcpPacketNetwork::WriterLoop(Conn* conn) {
  while (true) {
    std::string frame = conn->queue.Receive();
    if (frame.empty()) return;  // shutdown sentinel
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t nw = ::send(conn->fd, frame.data() + off,
                                frame.size() - off, MSG_NOSIGNAL);
      if (nw > 0) {
        off += static_cast<std::size_t>(nw);
      } else if (nw < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{conn->fd, POLLOUT, 0};
        ::poll(&pfd, 1, 50);
      } else if (nw < 0 && errno == EINTR) {
        continue;
      } else {
        return;  // peer closed during shutdown
      }
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.packets_out;
    stats_.bytes_out += frame.size();
  }
}

void TcpPacketNetwork::ReaderLoop(MachineId dst, int fd) {
  FrameBuffer frames;
  char buf[64 * 1024];
  while (true) {
    const ssize_t nr = ::recv(fd, buf, sizeof buf, 0);
    if (nr == 0) return;  // closed
    if (nr < 0) {
      if (errno == EINTR) continue;
      return;
    }
    frames.Append(std::string_view(buf, static_cast<std::size_t>(nr)));
    while (true) {
      auto next = frames.Next();
      TPART_CHECK(next.ok())
          << "corrupt frame stream to machine " << dst << ": "
          << next.status().ToString();
      if (!next->has_value()) break;
      std::string packet = std::move(**next);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.packets_in;
        stats_.bytes_in += packet.size() + kFrameHeaderBytes;
      }
      handler_(dst, std::move(packet));
      {
        std::lock_guard<std::mutex> lock(drain_mu_);
        ++handled_;
      }
      drain_cv_.notify_all();
    }
  }
}

void TcpPacketNetwork::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return handled_ == accepted_; });
}

void TcpPacketNetwork::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (const int fd : listen_fds_) {
    if (fd >= 0) ::close(fd);
  }
  // Writers first: they flush queued frames up to the sentinel, so
  // nothing already accepted is cut off mid-stream.
  for (auto& conn : conns_) {
    if (conn) conn->queue.Send(std::string());
  }
  for (auto& conn : conns_) {
    if (conn && conn->writer.joinable()) conn->writer.join();
  }
  for (auto& conn : conns_) {
    if (conn && conn->fd >= 0) {
      ::shutdown(conn->fd, SHUT_RDWR);
      ::close(conn->fd);
    }
  }
  {
    std::lock_guard<std::mutex> lock(readers_mu_);
    for (const int fd : reader_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& r : readers_) {
    if (r.joinable()) r.join();
  }
  for (const int fd : reader_fds_) ::close(fd);
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (const auto& conn : conns_) {
    if (!conn) continue;
    stats_.queue_high_water = std::max<std::uint64_t>(
        stats_.queue_high_water, conn->queue.high_water());
  }
}

TransportStats TcpPacketNetwork::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  TransportStats out = stats_;
  if (!stopped_) {
    for (const auto& conn : conns_) {
      if (!conn) continue;
      out.queue_high_water = std::max<std::uint64_t>(out.queue_high_water,
                                                     conn->queue.high_water());
    }
  }
  return out;
}

}  // namespace tpart
