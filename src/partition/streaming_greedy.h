#ifndef TPART_PARTITION_STREAMING_GREEDY_H_
#define TPART_PARTITION_STREAMING_GREEDY_H_

#include "partition/partitioner.h"

namespace tpart {

/// The paper's real-time partitioner (Algorithm 1, §5.1), an extension of
/// weighted deterministic greedy streaming graph partitioning [26]:
/// process unsunk transactions in total order; place each at the partition
/// with the greatest edge affinity, breaking ties toward the lighter
/// partition, then toward the smaller machine id.
///
/// The β extension (§6.3.6) folds load balance into the score itself:
/// score(m) = affinity(m) - beta * load(m); "the throughput is high only
/// if β is sufficiently large, justifying the importance of load
/// balancing."
///
/// Because assignments of unsunk nodes may change until they sink (§3.3),
/// Partition() re-streams the whole unsunk window; this is the per-batch
/// "update" cost reported in the §5.1 table.
class StreamingGreedyPartitioner : public GraphPartitioner {
 public:
  enum class Mode {
    /// Plain Algorithm 1: lexicographic (affinity, then load, then id).
    kLexicographic,
    /// β extension: affinity - beta * load.
    kWeighted,
  };

  struct Options {
    Mode mode = Mode::kWeighted;
    double beta = 0.05;
  };

  explicit StreamingGreedyPartitioner(Options options) : options_(options) {}
  StreamingGreedyPartitioner() : StreamingGreedyPartitioner(Options{}) {}

  void Partition(TGraph& graph) override;
  const char* name() const override { return "streaming-greedy"; }

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace tpart

#endif  // TPART_PARTITION_STREAMING_GREEDY_H_
