#ifndef TPART_PARTITION_PARTITION_METRICS_H_
#define TPART_PARTITION_PARTITION_METRICS_H_

#include <string>
#include <vector>

#include "tgraph/tgraph.h"

namespace tpart {

/// Quality metrics of a T-graph partitioning, matching the §5.1
/// comparison table: cut = total weight of cross-partition edges; skew =
/// "the maximum difference between the loads of machines (in total weight
/// of nodes on a machine)".
struct PartitionQuality {
  double cut = 0.0;
  double skew = 0.0;
  std::vector<double> loads;

  std::string ToString() const;
};

/// Measures the current assignment of `graph` (sink weights included in
/// machine loads).
PartitionQuality MeasurePartition(const TGraph& graph);

}  // namespace tpart

#endif  // TPART_PARTITION_PARTITION_METRICS_H_
