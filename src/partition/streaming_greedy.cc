#include "partition/streaming_greedy.h"

#include <vector>

#include "obs/trace.h"

namespace tpart {

void StreamingGreedyPartitioner::Partition(TGraph& graph) {
  TPART_TRACE_SPAN("streaming_greedy", "scheduler",
                   {{"unsunk", graph.num_unsunk()}});
  const std::size_t k = graph.num_machines();
  std::vector<double> load(k);
  for (std::size_t m = 0; m < k; ++m) {
    load[m] = graph.sink_weight(static_cast<MachineId>(m));
  }

  std::vector<TxnId> order;
  order.reserve(graph.num_unsunk());
  graph.ForEachUnsunk(
      [&](const TxnNode& n) { order.push_back(n.spec.id); });

  std::vector<double> affinity(k);
  for (const TxnId id : order) {
    std::fill(affinity.begin(), affinity.end(), 0.0);
    // Only neighbours already (re)placed in this pass count as placed —
    // i.e. transactions earlier in the total order — plus sink nodes.
    graph.AccumulateAffinity(
        id, [&](TxnId peer) { return peer < id; }, affinity);

    MachineId best = 0;
    if (options_.mode == Mode::kWeighted) {
      double best_score = affinity[0] - options_.beta * load[0];
      for (std::size_t m = 1; m < k; ++m) {
        const double score = affinity[m] - options_.beta * load[m];
        if (score > best_score ||
            (score == best_score && load[m] < load[best])) {
          best = static_cast<MachineId>(m);
          best_score = score;
        }
      }
    } else {
      // Algorithm 1: max affinity; tie -> lighter partition; tie ->
      // smaller machine id (ids ascend, so '>' strictly keeps the first).
      for (std::size_t m = 1; m < k; ++m) {
        if (affinity[m] > affinity[best] ||
            (affinity[m] == affinity[best] && load[m] < load[best])) {
          best = static_cast<MachineId>(m);
        }
      }
    }

    TxnNode& node = graph.mutable_node(id);
    node.assigned = best;
    load[best] += node.weight;
  }
}

}  // namespace tpart
