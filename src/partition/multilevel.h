#ifndef TPART_PARTITION_MULTILEVEL_H_
#define TPART_PARTITION_MULTILEVEL_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "partition/partitioner.h"

namespace tpart {

/// Undirected weighted graph, possibly with fixed (pinned) vertices, as
/// consumed by the multilevel partitioner. Layout matches
/// TGraph::Snapshot (sinks first, fixed to their machine).
struct WeightedGraph {
  std::vector<double> vertex_weight;
  /// fixed[v] = partition id, or -1 when free.
  std::vector<int> fixed;
  /// Symmetric adjacency with merged parallel edges.
  std::vector<std::vector<std::pair<int, double>>> adj;

  std::size_t size() const { return vertex_weight.size(); }
};

struct MultilevelOptions {
  /// Allowed load imbalance: max part weight <= (1 + imbalance) * average.
  double imbalance = 0.10;
  /// Stop coarsening below this vertex count.
  std::size_t coarsen_threshold = 64;
  /// Maximum FM refinement sweeps per level.
  int refine_passes = 8;
  /// Deterministic seed for matching order perturbation.
  std::uint64_t seed = 42;
};

/// METIS-style multilevel k-way partitioning: heavy-edge-matching
/// coarsening, greedy initial partitioning seeded from the fixed
/// vertices, and FM-style boundary refinement during uncoarsening.
/// The disconnectivity constraint (§3.2/§5.1) is honoured natively by
/// treating sink vertices as fixed, rather than via the pin-node/tie-edge
/// reduction (which partition/pin_reduction.h provides for comparison).
///
/// Returns assignment[v] in [0, k) for every vertex; fixed vertices keep
/// their pinned partition.
std::vector<int> MultilevelPartition(const WeightedGraph& graph, int k,
                                     const MultilevelOptions& options = {});

/// Cut weight of `assignment` on `graph` (each undirected edge counted
/// once).
double GraphCutWeight(const WeightedGraph& graph,
                      const std::vector<int>& assignment);

/// Per-partition vertex-weight loads.
std::vector<double> GraphLoads(const WeightedGraph& graph, int k,
                               const std::vector<int>& assignment);

/// GraphPartitioner adapter: snapshots the T-graph, runs the multilevel
/// algorithm, and writes assignments back. This is the "METIS-based"
/// baseline of the §5.1 comparison table — higher quality, much slower,
/// and requiring a full repartition per batch.
class MultilevelPartitioner : public GraphPartitioner {
 public:
  explicit MultilevelPartitioner(MultilevelOptions options)
      : options_(options) {}
  MultilevelPartitioner() : MultilevelPartitioner(MultilevelOptions{}) {}

  void Partition(TGraph& graph) override;
  const char* name() const override { return "multilevel"; }

 private:
  MultilevelOptions options_;
};

}  // namespace tpart

#endif  // TPART_PARTITION_MULTILEVEL_H_
