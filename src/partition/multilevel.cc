#include "partition/multilevel.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"

namespace tpart {

namespace {

struct Level {
  WeightedGraph graph;
  /// coarse vertex of each fine vertex (into the next level).
  std::vector<int> map_to_coarse;
};

// Heavy-edge matching: visit vertices in a deterministic shuffled order;
// match each unmatched vertex with its heaviest-edge unmatched neighbour.
// Vertices with different fixed labels (or two distinct fixed labels)
// never match, so pins survive coarsening.
WeightedGraph Coarsen(const WeightedGraph& g, std::vector<int>& map_to_coarse,
                      Rng& rng) {
  const std::size_t n = g.size();
  std::vector<int> match(n, -1);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBelow(i)]);
  }

  auto compatible = [&](std::size_t u, std::size_t v) {
    return g.fixed[u] < 0 || g.fixed[v] < 0 || g.fixed[u] == g.fixed[v];
  };

  for (const std::size_t u : order) {
    if (match[u] != -1) continue;
    int best = -1;
    double best_w = -1.0;
    for (const auto& [v, w] : g.adj[u]) {
      const auto vu = static_cast<std::size_t>(v);
      if (vu == u || match[vu] != -1) continue;
      if (!compatible(u, vu)) continue;
      if (w > best_w) {
        best_w = w;
        best = v;
      }
    }
    if (best >= 0) {
      match[u] = best;
      match[static_cast<std::size_t>(best)] = static_cast<int>(u);
    } else {
      match[u] = static_cast<int>(u);
    }
  }

  // Number coarse vertices.
  map_to_coarse.assign(n, -1);
  int next = 0;
  for (std::size_t u = 0; u < n; ++u) {
    if (map_to_coarse[u] != -1) continue;
    const auto v = static_cast<std::size_t>(match[u]);
    map_to_coarse[u] = next;
    map_to_coarse[v] = next;
    ++next;
  }

  WeightedGraph coarse;
  coarse.vertex_weight.assign(static_cast<std::size_t>(next), 0.0);
  coarse.fixed.assign(static_cast<std::size_t>(next), -1);
  coarse.adj.resize(static_cast<std::size_t>(next));
  for (std::size_t u = 0; u < n; ++u) {
    const auto cu = static_cast<std::size_t>(map_to_coarse[u]);
    coarse.vertex_weight[cu] += g.vertex_weight[u];
    if (g.fixed[u] >= 0) coarse.fixed[cu] = g.fixed[u];
  }
  for (std::size_t u = 0; u < n; ++u) {
    const int cu = map_to_coarse[u];
    for (const auto& [v, w] : g.adj[u]) {
      const int cv = map_to_coarse[static_cast<std::size_t>(v)];
      if (cu == cv) continue;
      coarse.adj[static_cast<std::size_t>(cu)].emplace_back(cv, w);
    }
  }
  for (auto& nbrs : coarse.adj) {
    std::sort(nbrs.begin(), nbrs.end());
    std::size_t out = 0;
    for (std::size_t i = 0; i < nbrs.size();) {
      const int target = nbrs[i].first;
      double w = 0.0;
      while (i < nbrs.size() && nbrs[i].first == target) {
        w += nbrs[i].second;
        ++i;
      }
      nbrs[out++] = {target, w};
    }
    nbrs.resize(out);
  }
  return coarse;
}

// Greedy initial partitioning: fixed vertices seed their partitions; the
// rest are placed by affinity, subject to the balance bound (falling back
// to the lightest partition when nothing fits).
std::vector<int> InitialPartition(const WeightedGraph& g, int k,
                                  double max_load) {
  const std::size_t n = g.size();
  std::vector<int> part(n, -1);
  std::vector<double> load(static_cast<std::size_t>(k), 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    if (g.fixed[u] >= 0) {
      part[u] = g.fixed[u];
      load[static_cast<std::size_t>(g.fixed[u])] += g.vertex_weight[u];
    }
  }
  for (std::size_t u = 0; u < n; ++u) {
    if (part[u] != -1) continue;
    std::vector<double> affinity(static_cast<std::size_t>(k), 0.0);
    for (const auto& [v, w] : g.adj[u]) {
      const int pv = part[static_cast<std::size_t>(v)];
      if (pv >= 0) affinity[static_cast<std::size_t>(pv)] += w;
    }
    int best = -1;
    int lightest = 0;
    for (int m = 0; m < k; ++m) {
      const auto mi = static_cast<std::size_t>(m);
      if (load[mi] < load[static_cast<std::size_t>(lightest)]) lightest = m;
      if (load[mi] + g.vertex_weight[u] > max_load) continue;
      if (best < 0) {
        best = m;
        continue;
      }
      const auto bi = static_cast<std::size_t>(best);
      if (affinity[mi] > affinity[bi] ||
          (affinity[mi] == affinity[bi] && load[mi] < load[bi])) {
        best = m;
      }
    }
    if (best < 0) best = lightest;
    part[u] = best;
    load[static_cast<std::size_t>(best)] += g.vertex_weight[u];
  }
  return part;
}

// One FM-style refinement sweep: move boundary vertices to the partition
// with maximum positive gain, subject to the balance bound. Returns total
// gain achieved.
double RefinePass(const WeightedGraph& g, int k, double max_load,
                  std::vector<int>& part, std::vector<double>& load) {
  double total_gain = 0.0;
  const std::size_t n = g.size();
  std::vector<double> affinity(static_cast<std::size_t>(k));
  for (std::size_t u = 0; u < n; ++u) {
    if (g.fixed[u] >= 0) continue;
    std::fill(affinity.begin(), affinity.end(), 0.0);
    for (const auto& [v, w] : g.adj[u]) {
      affinity[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
          w;
    }
    const int cur = part[u];
    const double cur_aff = affinity[static_cast<std::size_t>(cur)];
    int best = cur;
    double best_gain = 0.0;
    for (int m = 0; m < k; ++m) {
      if (m == cur) continue;
      const double gain = affinity[static_cast<std::size_t>(m)] - cur_aff;
      const bool fits =
          load[static_cast<std::size_t>(m)] + g.vertex_weight[u] <= max_load;
      if (gain > best_gain && fits) {
        best_gain = gain;
        best = m;
      }
    }
    if (best != cur) {
      load[static_cast<std::size_t>(cur)] -= g.vertex_weight[u];
      load[static_cast<std::size_t>(best)] += g.vertex_weight[u];
      part[u] = best;
      total_gain += best_gain;
    }
  }
  return total_gain;
}

}  // namespace

double GraphCutWeight(const WeightedGraph& graph,
                      const std::vector<int>& assignment) {
  double cut = 0.0;
  for (std::size_t u = 0; u < graph.size(); ++u) {
    for (const auto& [v, w] : graph.adj[u]) {
      if (static_cast<std::size_t>(v) > u &&
          assignment[u] != assignment[static_cast<std::size_t>(v)]) {
        cut += w;
      }
    }
  }
  return cut;
}

std::vector<double> GraphLoads(const WeightedGraph& graph, int k,
                               const std::vector<int>& assignment) {
  std::vector<double> load(static_cast<std::size_t>(k), 0.0);
  for (std::size_t u = 0; u < graph.size(); ++u) {
    load[static_cast<std::size_t>(assignment[u])] += graph.vertex_weight[u];
  }
  return load;
}

std::vector<int> MultilevelPartition(const WeightedGraph& graph, int k,
                                     const MultilevelOptions& options) {
  TPART_CHECK(k >= 1);
  if (graph.size() == 0) return {};
  Rng rng(options.seed);

  // Build the coarsening hierarchy.
  std::vector<Level> levels;
  levels.push_back(Level{graph, {}});
  while (levels.back().graph.size() > options.coarsen_threshold) {
    Level& fine = levels.back();
    WeightedGraph coarse = Coarsen(fine.graph, fine.map_to_coarse, rng);
    if (coarse.size() >= fine.graph.size()) break;  // matching stalled
    levels.push_back(Level{std::move(coarse), {}});
  }

  const double total_weight = std::accumulate(
      graph.vertex_weight.begin(), graph.vertex_weight.end(), 0.0);
  const double max_load =
      (total_weight / k) * (1.0 + options.imbalance) +
      std::numeric_limits<double>::epsilon();

  // Initial partition at the coarsest level, then refine while projecting
  // back to finer levels.
  std::vector<int> part = InitialPartition(levels.back().graph, k, max_load);
  for (std::size_t li = levels.size(); li-- > 0;) {
    WeightedGraph& g = levels[li].graph;
    std::vector<double> load = GraphLoads(g, k, part);
    for (int pass = 0; pass < options.refine_passes; ++pass) {
      if (RefinePass(g, k, max_load, part, load) <= 0.0) break;
    }
    if (li > 0) {
      // Project to the finer level.
      const std::vector<int>& map = levels[li - 1].map_to_coarse;
      std::vector<int> fine_part(levels[li - 1].graph.size());
      for (std::size_t u = 0; u < fine_part.size(); ++u) {
        fine_part[u] = part[static_cast<std::size_t>(map[u])];
      }
      part = std::move(fine_part);
    }
  }
  // Fixed vertices must have kept their labels.
  for (std::size_t u = 0; u < graph.size(); ++u) {
    if (graph.fixed[u] >= 0) {
      assert(part[u] == graph.fixed[u]);
      part[u] = graph.fixed[u];
    }
  }
  return part;
}

void MultilevelPartitioner::Partition(TGraph& graph) {
  TGraph::Snapshot snap = graph.ExportSnapshot();
  WeightedGraph wg;
  wg.vertex_weight = snap.vertex_weight;
  wg.fixed = snap.fixed;
  wg.adj = snap.adj;
  const std::vector<int> part = MultilevelPartition(
      wg, static_cast<int>(graph.num_machines()), options_);
  graph.ApplySnapshotAssignment(snap, part);
}

}  // namespace tpart
