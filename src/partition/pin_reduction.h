#ifndef TPART_PARTITION_PIN_REDUCTION_H_
#define TPART_PARTITION_PIN_REDUCTION_H_

#include "partition/multilevel.h"

namespace tpart {

/// The paper's first (and discarded) idea for the disconnectivity
/// constraint (§5.1): "introduce a virtual node, called the pin node, for
/// each sink node and connect them using a virtual edge, called the tie
/// edge. Then, by giving sufficiently large weights to all the tie edges,
/// we can ensure that each pair of the sink and pin nodes will go to the
/// same partition. Furthermore, by giving sufficiently large weights to
/// the pin nodes we can ensure that two pins never go to the same
/// partition."
///
/// This reduction lets an *unconstrained* balanced partitioner handle the
/// pinned problem. We keep it for tests and the ablation bench that
/// demonstrates its shortcoming ("the large pin weights dilute the weights
/// of normal nodes, so we may not find very balanced partitions").
///
/// Input: a graph whose first `num_pins` vertices are the sinks (fixed
/// labels are ignored). Output: the same graph plus `num_pins` pin
/// vertices appended at the end, connected by tie edges; all fixed labels
/// cleared.
WeightedGraph ApplyPinReduction(const WeightedGraph& graph,
                                std::size_t num_pins, double pin_weight,
                                double tie_weight);

/// Recovers a constrained assignment from the reduced solution: relabels
/// partitions so that sink i ends up in partition i (using the pin/sink
/// placement), and drops the pin vertices. Returns false when the reduced
/// solution violates the disconnectivity constraint (two sinks sharing a
/// partition), in which case `out` is untouched.
bool RecoverPinAssignment(const WeightedGraph& reduced,
                          std::size_t num_pins,
                          const std::vector<int>& reduced_assignment,
                          std::vector<int>& out);

}  // namespace tpart

#endif  // TPART_PARTITION_PIN_REDUCTION_H_
