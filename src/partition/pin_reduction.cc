#include "partition/pin_reduction.h"

#include <algorithm>

namespace tpart {

WeightedGraph ApplyPinReduction(const WeightedGraph& graph,
                                std::size_t num_pins, double pin_weight,
                                double tie_weight) {
  WeightedGraph out = graph;
  const std::size_t base = graph.size();
  std::fill(out.fixed.begin(), out.fixed.end(), -1);
  for (std::size_t i = 0; i < num_pins; ++i) {
    out.vertex_weight.push_back(pin_weight);
    out.fixed.push_back(-1);
    out.adj.emplace_back();
    const int pin = static_cast<int>(base + i);
    const int sink = static_cast<int>(i);
    out.adj[static_cast<std::size_t>(pin)].emplace_back(sink, tie_weight);
    out.adj[static_cast<std::size_t>(sink)].emplace_back(pin, tie_weight);
  }
  return out;
}

bool RecoverPinAssignment(const WeightedGraph& reduced,
                          std::size_t num_pins,
                          const std::vector<int>& reduced_assignment,
                          std::vector<int>& out) {
  const std::size_t n = reduced.size() - num_pins;
  // Partition label chosen for each sink (vertex i < num_pins).
  std::vector<int> label_of_sink(num_pins);
  std::vector<bool> label_used(num_pins, false);
  for (std::size_t i = 0; i < num_pins; ++i) {
    const int label = reduced_assignment[i];
    if (label < 0 || static_cast<std::size_t>(label) >= num_pins) {
      return false;
    }
    if (label_used[static_cast<std::size_t>(label)]) return false;
    label_used[static_cast<std::size_t>(label)] = true;
    label_of_sink[i] = label;
  }
  // relabel[old label] = sink index that owns it.
  std::vector<int> relabel(num_pins, -1);
  for (std::size_t i = 0; i < num_pins; ++i) {
    relabel[static_cast<std::size_t>(label_of_sink[i])] =
        static_cast<int>(i);
  }
  out.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const int label = reduced_assignment[v];
    if (label < 0 || static_cast<std::size_t>(label) >= num_pins) {
      return false;
    }
    out[v] = relabel[static_cast<std::size_t>(label)];
  }
  return true;
}

}  // namespace tpart
