#ifndef TPART_PARTITION_PARTITIONER_H_
#define TPART_PARTITION_PARTITIONER_H_

#include "tgraph/tgraph.h"

namespace tpart {

/// Assigns every unsunk transaction node of a T-graph to a machine,
/// subject to the disconnectivity constraint (§3.2): sink nodes are
/// pinned, one per partition. Implementations must be deterministic
/// functions of the graph so that independent schedulers agree (§3.3).
class GraphPartitioner {
 public:
  virtual ~GraphPartitioner() = default;

  /// (Re)assigns all unsunk nodes of `graph`.
  virtual void Partition(TGraph& graph) = 0;

  virtual const char* name() const = 0;
};

}  // namespace tpart

#endif  // TPART_PARTITION_PARTITIONER_H_
