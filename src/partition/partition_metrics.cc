#include "partition/partition_metrics.h"

#include <algorithm>
#include <sstream>

namespace tpart {

std::string PartitionQuality::ToString() const {
  std::ostringstream out;
  out << "cut=" << cut << " skew=" << skew << " loads=[";
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (i > 0) out << ",";
    out << loads[i];
  }
  out << "]";
  return out.str();
}

PartitionQuality MeasurePartition(const TGraph& graph) {
  PartitionQuality q;
  q.cut = graph.CutWeight();
  q.loads = graph.AssignedLoad();
  for (std::size_t m = 0; m < q.loads.size(); ++m) {
    q.loads[m] += graph.sink_weight(static_cast<MachineId>(m));
  }
  if (!q.loads.empty()) {
    const auto [lo, hi] = std::minmax_element(q.loads.begin(), q.loads.end());
    q.skew = *hi - *lo;
  }
  return q;
}

}  // namespace tpart
