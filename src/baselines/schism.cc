#include "baselines/schism.h"

#include <algorithm>
#include <unordered_map>

namespace tpart {

std::shared_ptr<LookupPartitionMap> BuildSchismPartition(
    const std::vector<TxnSpec>& trace,
    std::shared_ptr<const DataPartitionMap> fallback,
    const SchismOptions& options) {
  // Assign dense vertex ids to records in first-touch order.
  std::unordered_map<ObjectKey, int> vertex_of;
  std::vector<ObjectKey> key_of;
  auto vtx = [&](ObjectKey k) {
    auto [it, inserted] =
        vertex_of.emplace(k, static_cast<int>(key_of.size()));
    if (inserted) key_of.push_back(k);
    return it->second;
  };

  // Co-access clique edges, merged via a map keyed by (min, max).
  std::unordered_map<std::uint64_t, double> edge_weight;
  std::size_t used = 0;
  for (const TxnSpec& spec : trace) {
    if (spec.is_dummy) continue;
    if (++used > options.max_trace_txns) break;
    KeySet keys = spec.rw.AllKeys();
    if (keys.size() > options.max_keys_per_txn) {
      keys.resize(options.max_keys_per_txn);
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const int a = vtx(keys[i]);
      for (std::size_t j = i + 1; j < keys.size(); ++j) {
        const int b = vtx(keys[j]);
        const auto lo = static_cast<std::uint64_t>(std::min(a, b));
        const auto hi = static_cast<std::uint64_t>(std::max(a, b));
        edge_weight[(lo << 32) | hi] += 1.0;
      }
    }
  }

  WeightedGraph g;
  g.vertex_weight.assign(key_of.size(), 1.0);
  g.fixed.assign(key_of.size(), -1);
  g.adj.resize(key_of.size());
  for (const auto& [packed, w] : edge_weight) {
    const auto a = static_cast<int>(packed >> 32);
    const auto b = static_cast<int>(packed & 0xFFFFFFFFu);
    g.adj[static_cast<std::size_t>(a)].emplace_back(b, w);
    g.adj[static_cast<std::size_t>(b)].emplace_back(a, w);
  }

  const std::vector<int> part = MultilevelPartition(
      g, static_cast<int>(options.num_machines), options.multilevel);

  auto map = std::make_shared<LookupPartitionMap>(options.num_machines,
                                                  std::move(fallback));
  for (std::size_t v = 0; v < key_of.size(); ++v) {
    map->Assign(key_of[v], static_cast<MachineId>(part[v]));
  }
  return map;
}

}  // namespace tpart
