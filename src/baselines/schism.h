#ifndef TPART_BASELINES_SCHISM_H_
#define TPART_BASELINES_SCHISM_H_

#include <memory>
#include <vector>

#include "partition/multilevel.h"
#include "storage/data_partition.h"
#include "txn/txn.h"

namespace tpart {

/// Schism-style workload-driven data partitioning [9] (§6.2, Fig. 6(b)):
/// "model the trace of ... transactions into a graph, then employ METIS
/// ... to partition the graph and obtain data partitions." Nodes are
/// records, edges are co-accesses within a transaction; the balanced
/// min-cut assignment becomes an explicit per-record placement.
///
/// This is the *looking-back* approach the paper contrasts with T-Part:
/// it "only finds good partitions in the past, and gives no guarantee on
/// the quality of partitions when facing the changing workloads" (§1).
struct SchismOptions {
  std::size_t num_machines = 4;
  MultilevelOptions multilevel;
  /// Cap on trace transactions modelled (the paper uses 300K).
  std::size_t max_trace_txns = 300'000;
  /// Cap on clique edges per transaction (guards degenerate huge txns).
  std::size_t max_keys_per_txn = 64;
};

/// Builds a data-partition map from `trace`, with `fallback` placement
/// for records the trace never touched.
std::shared_ptr<LookupPartitionMap> BuildSchismPartition(
    const std::vector<TxnSpec>& trace,
    std::shared_ptr<const DataPartitionMap> fallback,
    const SchismOptions& options);

}  // namespace tpart

#endif  // TPART_BASELINES_SCHISM_H_
