#ifndef TPART_BASELINES_GSTORE_H_
#define TPART_BASELINES_GSTORE_H_

#include "sim/tpart_sim.h"

namespace tpart {

/// G-Store-style dynamic data movement [10] (§6.2, Fig. 6(d)): move each
/// transaction group's read/write sets to one machine, execute there, and
/// move the records back. The paper observes that its simulation of this
/// approach "reduces to T-Part with the sink size 1": no cross-batch cache
/// entries survive (always_write_back) and no forward-push edges exist
/// within a one-transaction batch.
TPartSimOptions MakeGStoreSimOptions(const TPartSimOptions& base);

}  // namespace tpart

#endif  // TPART_BASELINES_GSTORE_H_
