#include "baselines/gstore.h"

namespace tpart {

TPartSimOptions MakeGStoreSimOptions(const TPartSimOptions& base) {
  TPartSimOptions o = base;
  o.scheduler.sink_size = 1;
  o.scheduler.graph.always_write_back = true;
  // A one-transaction batch has nothing to optimise.
  o.scheduler.optimize_plans = false;
  // Records always travel back to storage immediately; sticky caching
  // would blur the "move the records back" semantics.
  o.scheduler.graph.sticky_cache = false;
  o.sticky_ttl = 0;
  return o;
}

}  // namespace tpart
