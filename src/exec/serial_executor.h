#ifndef TPART_EXEC_SERIAL_EXECUTOR_H_
#define TPART_EXEC_SERIAL_EXECUTOR_H_

#include <vector>

#include "common/flat_map.h"
#include "common/status.h"
#include "storage/kv_store.h"
#include "txn/procedure.h"
#include "txn/txn.h"

namespace tpart {

/// Reusable per-worker execution scratch (DESIGN.md §4h): the gathered
/// read values and buffered writes of one transaction. The open-addressing
/// tables keep their slot arrays across Clear(), so a worker's steady-state
/// execute loop performs no map-node allocations. Callers own the scratch,
/// Clear() it between transactions, and keep it alive for as long as the
/// GatheredTxnContext borrowing it.
struct ExecScratch {
  FlatMap<ObjectKey, Record> values;
  FlatMap<ObjectKey, Record> writes;

  void Clear() {
    values.clear();
    writes.clear();
  }
};

/// TxnContext over pre-gathered read values with buffered writes — the
/// execution surface shared by every engine. Reads are served from the
/// gathered map (absent keys yield Record::Absent()); writes are buffered
/// and only visible through writes() when the procedure committed.
class GatheredTxnContext : public BasicTxnContext {
 public:
  /// Borrows `scratch` (non-owning): `scratch->values` must already hold
  /// the gathered reads, and the caller must have Clear()ed it since the
  /// previous transaction.
  GatheredTxnContext(const TxnSpec* spec, ExecScratch* scratch)
      : BasicTxnContext(&spec->params), spec_(spec), scratch_(scratch) {}

  Result<Record> Get(ObjectKey key) override;
  Status Put(ObjectKey key, Record record) override;

  /// Buffered writes (valid regardless of commit; callers consult the
  /// commit decision).
  FlatMap<ObjectKey, Record>& writes() { return scratch_->writes; }

  /// Value of `key` as this transaction leaves it: the buffered write
  /// when committed and written, otherwise the gathered (old) value —
  /// exactly what forward-pushing must ship, including for aborts (§5.3).
  Record OutgoingValue(ObjectKey key, bool committed) const;

 private:
  const TxnSpec* spec_;
  ExecScratch* scratch_;
};

/// Reference engine: executes the totally ordered `txns` one at a time
/// against a single store. Its final state and outputs define correctness
/// for every distributed engine (determinism + serializability).
struct SerialRunResult {
  std::vector<TxnResult> results;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
};

Result<SerialRunResult> RunSerial(const ProcedureRegistry& registry,
                                  const std::vector<TxnSpec>& txns,
                                  KvStore& store);

}  // namespace tpart

#endif  // TPART_EXEC_SERIAL_EXECUTOR_H_
