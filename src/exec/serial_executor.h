#ifndef TPART_EXEC_SERIAL_EXECUTOR_H_
#define TPART_EXEC_SERIAL_EXECUTOR_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/kv_store.h"
#include "txn/procedure.h"
#include "txn/txn.h"

namespace tpart {

/// TxnContext over pre-gathered read values with buffered writes — the
/// execution surface shared by every engine. Reads are served from the
/// gathered map (absent keys yield Record::Absent()); writes are buffered
/// and only visible through TakeWrites() when the procedure committed.
class GatheredTxnContext : public BasicTxnContext {
 public:
  GatheredTxnContext(const TxnSpec* spec,
                     std::unordered_map<ObjectKey, Record> values)
      : BasicTxnContext(&spec->params),
        spec_(spec),
        values_(std::move(values)) {}

  Result<Record> Get(ObjectKey key) override;
  Status Put(ObjectKey key, Record record) override;

  /// Buffered writes (valid regardless of commit; callers consult the
  /// commit decision).
  std::unordered_map<ObjectKey, Record>& writes() { return writes_; }

  /// Value of `key` as this transaction leaves it: the buffered write
  /// when committed and written, otherwise the gathered (old) value —
  /// exactly what forward-pushing must ship, including for aborts (§5.3).
  Record OutgoingValue(ObjectKey key, bool committed) const;

 private:
  const TxnSpec* spec_;
  std::unordered_map<ObjectKey, Record> values_;
  std::unordered_map<ObjectKey, Record> writes_;
};

/// Reference engine: executes the totally ordered `txns` one at a time
/// against a single store. Its final state and outputs define correctness
/// for every distributed engine (determinism + serializability).
struct SerialRunResult {
  std::vector<TxnResult> results;
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
};

Result<SerialRunResult> RunSerial(const ProcedureRegistry& registry,
                                  const std::vector<TxnSpec>& txns,
                                  KvStore& store);

}  // namespace tpart

#endif  // TPART_EXEC_SERIAL_EXECUTOR_H_
