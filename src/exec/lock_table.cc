#include "exec/lock_table.h"

#include <algorithm>

#include "txn/rw_set.h"

namespace tpart {

void LockTable::Enqueue(TxnId txn, const std::vector<ObjectKey>& reads,
                        const std::vector<ObjectKey>& writes) {
  std::vector<std::pair<ObjectKey, Mode>> requests;
  requests.reserve(reads.size() + writes.size());
  for (const ObjectKey k : reads) {
    if (!KeySetContains(writes, k)) requests.push_back({k, Mode::kShared});
  }
  for (const ObjectKey k : writes) {
    requests.push_back({k, Mode::kExclusive});
  }

  bool granted_any = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t& pending = pending_[txn];
    pending = 0;
    auto& held = held_[txn];
    for (const auto& [key, mode] : requests) {
      KeyQueue& q = keys_[key];
      q.waiters.push_back(Request{txn, mode});
      held.push_back(key);
      ++pending;
      GrantHeadLocked(q);  // may grant immediately
    }
    granted_any = pending == 0;
  }
  if (granted_any) cv_.notify_all();
}

void LockTable::GrantHeadLocked(KeyQueue& q) {
  // Grant the head request, plus subsequent shared requests while the
  // head section is shared.
  while (q.granted < q.waiters.size()) {
    const Request& next = q.waiters[q.granted];
    if (q.granted == 0) {
      // Head always grants.
    } else if (next.mode == Mode::kShared &&
               q.waiters[0].mode == Mode::kShared) {
      // Shared coalescing: all granted entries are shared.
      bool all_shared = true;
      for (std::size_t i = 0; i < q.granted; ++i) {
        if (q.waiters[i].mode != Mode::kShared) {
          all_shared = false;
          break;
        }
      }
      if (!all_shared) break;
    } else {
      break;
    }
    ++q.granted;
    auto it = pending_.find(next.txn);
    if (it != pending_.end() && it->second > 0) {
      --it->second;
    }
  }
}

bool LockTable::AwaitGranted(TxnId txn) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    if (shutdown_) return true;
    auto it = pending_.find(txn);
    return it == pending_.end() || it->second == 0;
  });
  if (shutdown_) {
    auto it = pending_.find(txn);
    return it == pending_.end() || it->second == 0;
  }
  return true;
}

bool LockTable::IsGranted(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(txn);
  return it == pending_.end() || it->second == 0;
}

void LockTable::Release(TxnId txn) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto hit = held_.find(txn);
    if (hit == held_.end()) return;
    for (const ObjectKey key : hit->second) {
      auto qit = keys_.find(key);
      if (qit == keys_.end()) continue;
      KeyQueue& q = qit->second;
      for (std::size_t i = 0; i < q.waiters.size(); ++i) {
        if (q.waiters[i].txn == txn) {
          const bool was_granted = i < q.granted;
          q.waiters.erase(q.waiters.begin() +
                          static_cast<std::ptrdiff_t>(i));
          if (was_granted) --q.granted;
          break;
        }
      }
      if (q.waiters.empty()) {
        keys_.erase(qit);
      } else {
        GrantHeadLocked(q);
        notify = true;
      }
    }
    held_.erase(hit);
    pending_.erase(txn);
  }
  if (notify) cv_.notify_all();
}

void LockTable::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t LockTable::active_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.size();
}

}  // namespace tpart
