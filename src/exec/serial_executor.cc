#include "exec/serial_executor.h"

#include "txn/rw_set.h"

namespace tpart {

Result<Record> GatheredTxnContext::Get(ObjectKey key) {
  if (!spec_->rw.ReadsKey(key) && !spec_->rw.WritesKey(key)) {
    return Status::FailedPrecondition(
        "read of key outside the declared read set");
  }
  // Read-your-writes within the transaction.
  auto wit = scratch_->writes.find(key);
  if (wit != scratch_->writes.end()) return wit->second;
  auto it = scratch_->values.find(key);
  if (it == scratch_->values.end()) return Record::Absent();
  return it->second;
}

Status GatheredTxnContext::Put(ObjectKey key, Record record) {
  if (!spec_->rw.WritesKey(key)) {
    return Status::FailedPrecondition(
        "write of key outside the declared write set");
  }
  scratch_->writes[key] = std::move(record);
  return Status::Ok();
}

Record GatheredTxnContext::OutgoingValue(ObjectKey key,
                                         bool committed) const {
  if (committed) {
    auto wit = scratch_->writes.find(key);
    if (wit != scratch_->writes.end()) return wit->second;
  }
  auto it = scratch_->values.find(key);
  if (it == scratch_->values.end()) return Record::Absent();
  return it->second;
}

Result<SerialRunResult> RunSerial(const ProcedureRegistry& registry,
                                  const std::vector<TxnSpec>& txns,
                                  KvStore& store) {
  SerialRunResult out;
  out.results.reserve(txns.size());
  ExecScratch scratch;  // tables reused across the whole run
  for (const TxnSpec& spec : txns) {
    if (spec.is_dummy) continue;
    scratch.Clear();
    for (const ObjectKey k : spec.rw.AllKeys()) {
      Result<Record> r = store.Read(k);
      scratch.values.emplace(
          k, r.ok() ? std::move(r).value() : Record::Absent());
    }
    GatheredTxnContext ctx(&spec, &scratch);
    TPART_ASSIGN_OR_RETURN(TxnResult result,
                           RunProcedure(registry, spec, ctx));
    if (result.committed) {
      ++out.committed;
      for (auto& [key, rec] : ctx.writes()) {
        if (rec.is_absent()) {
          (void)store.Delete(key);
        } else {
          store.Upsert(key, std::move(rec));
        }
      }
    } else {
      ++out.aborted;
    }
    out.results.push_back(std::move(result));
  }
  return out;
}

}  // namespace tpart
