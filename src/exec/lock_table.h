#ifndef TPART_EXEC_LOCK_TABLE_H_
#define TPART_EXEC_LOCK_TABLE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace tpart {

/// Calvin's deterministic conservative locking (§2.1/§3.4): lock requests
/// are enqueued strictly in total order by a single dispatcher, granted
/// FIFO per key (shared readers coalesce), and a transaction executes only
/// once it holds every lock. Because requests enter in total order, the
/// wait-for graph is acyclic and deadlock is impossible.
class LockTable {
 public:
  /// Enqueues `txn`'s lock requests. Must be called from one thread in
  /// ascending txn order. Keys present in both sets are locked exclusive.
  void Enqueue(TxnId txn, const std::vector<ObjectKey>& reads,
               const std::vector<ObjectKey>& writes);

  /// Blocks until `txn` holds all its locks (returns immediately for
  /// transactions with no enqueued keys). Returns false after Shutdown().
  bool AwaitGranted(TxnId txn);

  /// Non-blocking check.
  bool IsGranted(TxnId txn) const;

  /// Releases all of `txn`'s locks, granting successors.
  void Release(TxnId txn);

  /// Releases all waiters (they observe false).
  void Shutdown();

  /// Number of keys with a non-empty queue (for tests).
  std::size_t active_keys() const;

 private:
  enum class Mode { kShared, kExclusive };
  struct Request {
    TxnId txn;
    Mode mode;
  };
  struct KeyQueue {
    std::deque<Request> waiters;  // head section = granted
    std::size_t granted = 0;      // count of granted head entries
  };

  // Grants as many head requests as compatibility allows; decrements the
  // pending count of newly granted txns. mu_ held.
  void GrantHeadLocked(KeyQueue& q);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::unordered_map<ObjectKey, KeyQueue> keys_;
  // Locks still ungranted per txn; granted when count reaches 0.
  std::unordered_map<TxnId, std::size_t> pending_;
  std::unordered_map<TxnId, std::vector<ObjectKey>> held_;
};

}  // namespace tpart

#endif  // TPART_EXEC_LOCK_TABLE_H_
