# Empty compiler generated dependencies file for trend_test.
# This may be replaced when dependencies are built.
