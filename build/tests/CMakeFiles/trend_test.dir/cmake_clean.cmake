file(REMOVE_RECURSE
  "CMakeFiles/trend_test.dir/trend_test.cc.o"
  "CMakeFiles/trend_test.dir/trend_test.cc.o.d"
  "trend_test"
  "trend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
