file(REMOVE_RECURSE
  "CMakeFiles/sequencer_test.dir/sequencer_test.cc.o"
  "CMakeFiles/sequencer_test.dir/sequencer_test.cc.o.d"
  "sequencer_test"
  "sequencer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequencer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
