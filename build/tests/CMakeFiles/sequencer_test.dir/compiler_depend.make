# Empty compiler generated dependencies file for sequencer_test.
# This may be replaced when dependencies are built.
