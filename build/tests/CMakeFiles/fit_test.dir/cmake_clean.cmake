file(REMOVE_RECURSE
  "CMakeFiles/fit_test.dir/fit_test.cc.o"
  "CMakeFiles/fit_test.dir/fit_test.cc.o.d"
  "fit_test"
  "fit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
