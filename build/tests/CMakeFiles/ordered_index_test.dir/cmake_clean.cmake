file(REMOVE_RECURSE
  "CMakeFiles/ordered_index_test.dir/ordered_index_test.cc.o"
  "CMakeFiles/ordered_index_test.dir/ordered_index_test.cc.o.d"
  "ordered_index_test"
  "ordered_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
