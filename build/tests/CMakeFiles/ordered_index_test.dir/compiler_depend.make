# Empty compiler generated dependencies file for ordered_index_test.
# This may be replaced when dependencies are built.
