file(REMOVE_RECURSE
  "CMakeFiles/sim_cluster_test.dir/sim_cluster_test.cc.o"
  "CMakeFiles/sim_cluster_test.dir/sim_cluster_test.cc.o.d"
  "sim_cluster_test"
  "sim_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
