# Empty dependencies file for storage_service_test.
# This may be replaced when dependencies are built.
