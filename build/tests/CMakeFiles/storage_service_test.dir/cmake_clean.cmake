file(REMOVE_RECURSE
  "CMakeFiles/storage_service_test.dir/storage_service_test.cc.o"
  "CMakeFiles/storage_service_test.dir/storage_service_test.cc.o.d"
  "storage_service_test"
  "storage_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
