file(REMOVE_RECURSE
  "CMakeFiles/lock_table_test.dir/lock_table_test.cc.o"
  "CMakeFiles/lock_table_test.dir/lock_table_test.cc.o.d"
  "lock_table_test"
  "lock_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
