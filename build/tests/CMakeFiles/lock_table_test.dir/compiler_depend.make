# Empty compiler generated dependencies file for lock_table_test.
# This may be replaced when dependencies are built.
