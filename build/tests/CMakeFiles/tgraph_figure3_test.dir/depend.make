# Empty dependencies file for tgraph_figure3_test.
# This may be replaced when dependencies are built.
