# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tgraph_figure3_test.
