file(REMOVE_RECURSE
  "CMakeFiles/tgraph_figure3_test.dir/tgraph_figure3_test.cc.o"
  "CMakeFiles/tgraph_figure3_test.dir/tgraph_figure3_test.cc.o.d"
  "tgraph_figure3_test"
  "tgraph_figure3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgraph_figure3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
