# Empty dependencies file for tgraph_test.
# This may be replaced when dependencies are built.
