file(REMOVE_RECURSE
  "CMakeFiles/tgraph_test.dir/tgraph_test.cc.o"
  "CMakeFiles/tgraph_test.dir/tgraph_test.cc.o.d"
  "tgraph_test"
  "tgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
