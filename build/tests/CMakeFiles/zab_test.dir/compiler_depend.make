# Empty compiler generated dependencies file for zab_test.
# This may be replaced when dependencies are built.
