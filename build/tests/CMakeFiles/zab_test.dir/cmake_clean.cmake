file(REMOVE_RECURSE
  "CMakeFiles/zab_test.dir/zab_test.cc.o"
  "CMakeFiles/zab_test.dir/zab_test.cc.o.d"
  "zab_test"
  "zab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
