file(REMOVE_RECURSE
  "CMakeFiles/zigzag_test.dir/zigzag_test.cc.o"
  "CMakeFiles/zigzag_test.dir/zigzag_test.cc.o.d"
  "zigzag_test"
  "zigzag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zigzag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
