# Empty compiler generated dependencies file for zigzag_test.
# This may be replaced when dependencies are built.
