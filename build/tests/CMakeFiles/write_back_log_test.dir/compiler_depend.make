# Empty compiler generated dependencies file for write_back_log_test.
# This may be replaced when dependencies are built.
