file(REMOVE_RECURSE
  "CMakeFiles/write_back_log_test.dir/write_back_log_test.cc.o"
  "CMakeFiles/write_back_log_test.dir/write_back_log_test.cc.o.d"
  "write_back_log_test"
  "write_back_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_back_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
