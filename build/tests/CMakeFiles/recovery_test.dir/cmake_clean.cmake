file(REMOVE_RECURSE
  "CMakeFiles/recovery_test.dir/recovery_test.cc.o"
  "CMakeFiles/recovery_test.dir/recovery_test.cc.o.d"
  "recovery_test"
  "recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
