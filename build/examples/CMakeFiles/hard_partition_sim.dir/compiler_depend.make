# Empty compiler generated dependencies file for hard_partition_sim.
# This may be replaced when dependencies are built.
