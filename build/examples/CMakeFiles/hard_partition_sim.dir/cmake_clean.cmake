file(REMOVE_RECURSE
  "CMakeFiles/hard_partition_sim.dir/hard_partition_sim.cpp.o"
  "CMakeFiles/hard_partition_sim.dir/hard_partition_sim.cpp.o.d"
  "hard_partition_sim"
  "hard_partition_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hard_partition_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
