# Empty dependencies file for cluster_cli.
# This may be replaced when dependencies are built.
