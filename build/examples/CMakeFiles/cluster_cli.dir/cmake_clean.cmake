file(REMOVE_RECURSE
  "CMakeFiles/cluster_cli.dir/cluster_cli.cpp.o"
  "CMakeFiles/cluster_cli.dir/cluster_cli.cpp.o.d"
  "cluster_cli"
  "cluster_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
