# Empty dependencies file for recovery_demo.
# This may be replaced when dependencies are built.
