file(REMOVE_RECURSE
  "CMakeFiles/recovery_demo.dir/recovery_demo.cpp.o"
  "CMakeFiles/recovery_demo.dir/recovery_demo.cpp.o.d"
  "recovery_demo"
  "recovery_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
