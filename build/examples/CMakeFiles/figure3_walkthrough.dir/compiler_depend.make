# Empty compiler generated dependencies file for figure3_walkthrough.
# This may be replaced when dependencies are built.
