file(REMOVE_RECURSE
  "CMakeFiles/figure3_walkthrough.dir/figure3_walkthrough.cpp.o"
  "CMakeFiles/figure3_walkthrough.dir/figure3_walkthrough.cpp.o.d"
  "figure3_walkthrough"
  "figure3_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
