file(REMOVE_RECURSE
  "CMakeFiles/tpcc_cluster.dir/tpcc_cluster.cpp.o"
  "CMakeFiles/tpcc_cluster.dir/tpcc_cluster.cpp.o.d"
  "tpcc_cluster"
  "tpcc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
