# Empty dependencies file for tpcc_cluster.
# This may be replaced when dependencies are built.
