file(REMOVE_RECURSE
  "libtpart.a"
)
