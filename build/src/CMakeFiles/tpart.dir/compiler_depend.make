# Empty compiler generated dependencies file for tpart.
# This may be replaced when dependencies are built.
