
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/gstore.cc" "src/CMakeFiles/tpart.dir/baselines/gstore.cc.o" "gcc" "src/CMakeFiles/tpart.dir/baselines/gstore.cc.o.d"
  "/root/repo/src/baselines/schism.cc" "src/CMakeFiles/tpart.dir/baselines/schism.cc.o" "gcc" "src/CMakeFiles/tpart.dir/baselines/schism.cc.o.d"
  "/root/repo/src/cache/cache_area.cc" "src/CMakeFiles/tpart.dir/cache/cache_area.cc.o" "gcc" "src/CMakeFiles/tpart.dir/cache/cache_area.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/tpart.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/tpart.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/tpart.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/tpart.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/tpart.dir/common/status.cc.o" "gcc" "src/CMakeFiles/tpart.dir/common/status.cc.o.d"
  "/root/repo/src/common/zipf.cc" "src/CMakeFiles/tpart.dir/common/zipf.cc.o" "gcc" "src/CMakeFiles/tpart.dir/common/zipf.cc.o.d"
  "/root/repo/src/exec/lock_table.cc" "src/CMakeFiles/tpart.dir/exec/lock_table.cc.o" "gcc" "src/CMakeFiles/tpart.dir/exec/lock_table.cc.o.d"
  "/root/repo/src/exec/serial_executor.cc" "src/CMakeFiles/tpart.dir/exec/serial_executor.cc.o" "gcc" "src/CMakeFiles/tpart.dir/exec/serial_executor.cc.o.d"
  "/root/repo/src/metrics/breakdown.cc" "src/CMakeFiles/tpart.dir/metrics/breakdown.cc.o" "gcc" "src/CMakeFiles/tpart.dir/metrics/breakdown.cc.o.d"
  "/root/repo/src/metrics/run_stats.cc" "src/CMakeFiles/tpart.dir/metrics/run_stats.cc.o" "gcc" "src/CMakeFiles/tpart.dir/metrics/run_stats.cc.o.d"
  "/root/repo/src/partition/multilevel.cc" "src/CMakeFiles/tpart.dir/partition/multilevel.cc.o" "gcc" "src/CMakeFiles/tpart.dir/partition/multilevel.cc.o.d"
  "/root/repo/src/partition/partition_metrics.cc" "src/CMakeFiles/tpart.dir/partition/partition_metrics.cc.o" "gcc" "src/CMakeFiles/tpart.dir/partition/partition_metrics.cc.o.d"
  "/root/repo/src/partition/pin_reduction.cc" "src/CMakeFiles/tpart.dir/partition/pin_reduction.cc.o" "gcc" "src/CMakeFiles/tpart.dir/partition/pin_reduction.cc.o.d"
  "/root/repo/src/partition/streaming_greedy.cc" "src/CMakeFiles/tpart.dir/partition/streaming_greedy.cc.o" "gcc" "src/CMakeFiles/tpart.dir/partition/streaming_greedy.cc.o.d"
  "/root/repo/src/runtime/channel.cc" "src/CMakeFiles/tpart.dir/runtime/channel.cc.o" "gcc" "src/CMakeFiles/tpart.dir/runtime/channel.cc.o.d"
  "/root/repo/src/runtime/cluster.cc" "src/CMakeFiles/tpart.dir/runtime/cluster.cc.o" "gcc" "src/CMakeFiles/tpart.dir/runtime/cluster.cc.o.d"
  "/root/repo/src/runtime/machine.cc" "src/CMakeFiles/tpart.dir/runtime/machine.cc.o" "gcc" "src/CMakeFiles/tpart.dir/runtime/machine.cc.o.d"
  "/root/repo/src/runtime/recovery.cc" "src/CMakeFiles/tpart.dir/runtime/recovery.cc.o" "gcc" "src/CMakeFiles/tpart.dir/runtime/recovery.cc.o.d"
  "/root/repo/src/runtime/storage_service.cc" "src/CMakeFiles/tpart.dir/runtime/storage_service.cc.o" "gcc" "src/CMakeFiles/tpart.dir/runtime/storage_service.cc.o.d"
  "/root/repo/src/scheduler/plan_optimizer.cc" "src/CMakeFiles/tpart.dir/scheduler/plan_optimizer.cc.o" "gcc" "src/CMakeFiles/tpart.dir/scheduler/plan_optimizer.cc.o.d"
  "/root/repo/src/scheduler/push_plan.cc" "src/CMakeFiles/tpart.dir/scheduler/push_plan.cc.o" "gcc" "src/CMakeFiles/tpart.dir/scheduler/push_plan.cc.o.d"
  "/root/repo/src/scheduler/tpart_scheduler.cc" "src/CMakeFiles/tpart.dir/scheduler/tpart_scheduler.cc.o" "gcc" "src/CMakeFiles/tpart.dir/scheduler/tpart_scheduler.cc.o.d"
  "/root/repo/src/sequencer/batch.cc" "src/CMakeFiles/tpart.dir/sequencer/batch.cc.o" "gcc" "src/CMakeFiles/tpart.dir/sequencer/batch.cc.o.d"
  "/root/repo/src/sequencer/sequencer.cc" "src/CMakeFiles/tpart.dir/sequencer/sequencer.cc.o" "gcc" "src/CMakeFiles/tpart.dir/sequencer/sequencer.cc.o.d"
  "/root/repo/src/sequencer/zab.cc" "src/CMakeFiles/tpart.dir/sequencer/zab.cc.o" "gcc" "src/CMakeFiles/tpart.dir/sequencer/zab.cc.o.d"
  "/root/repo/src/sim/calvin_sim.cc" "src/CMakeFiles/tpart.dir/sim/calvin_sim.cc.o" "gcc" "src/CMakeFiles/tpart.dir/sim/calvin_sim.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/tpart.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/tpart.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/sim_cluster.cc" "src/CMakeFiles/tpart.dir/sim/sim_cluster.cc.o" "gcc" "src/CMakeFiles/tpart.dir/sim/sim_cluster.cc.o.d"
  "/root/repo/src/sim/stall_tracker.cc" "src/CMakeFiles/tpart.dir/sim/stall_tracker.cc.o" "gcc" "src/CMakeFiles/tpart.dir/sim/stall_tracker.cc.o.d"
  "/root/repo/src/sim/tpart_sim.cc" "src/CMakeFiles/tpart.dir/sim/tpart_sim.cc.o" "gcc" "src/CMakeFiles/tpart.dir/sim/tpart_sim.cc.o.d"
  "/root/repo/src/storage/data_partition.cc" "src/CMakeFiles/tpart.dir/storage/data_partition.cc.o" "gcc" "src/CMakeFiles/tpart.dir/storage/data_partition.cc.o.d"
  "/root/repo/src/storage/kv_store.cc" "src/CMakeFiles/tpart.dir/storage/kv_store.cc.o" "gcc" "src/CMakeFiles/tpart.dir/storage/kv_store.cc.o.d"
  "/root/repo/src/storage/ordered_index.cc" "src/CMakeFiles/tpart.dir/storage/ordered_index.cc.o" "gcc" "src/CMakeFiles/tpart.dir/storage/ordered_index.cc.o.d"
  "/root/repo/src/storage/partitioned_store.cc" "src/CMakeFiles/tpart.dir/storage/partitioned_store.cc.o" "gcc" "src/CMakeFiles/tpart.dir/storage/partitioned_store.cc.o.d"
  "/root/repo/src/storage/record.cc" "src/CMakeFiles/tpart.dir/storage/record.cc.o" "gcc" "src/CMakeFiles/tpart.dir/storage/record.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/tpart.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/tpart.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/write_back_log.cc" "src/CMakeFiles/tpart.dir/storage/write_back_log.cc.o" "gcc" "src/CMakeFiles/tpart.dir/storage/write_back_log.cc.o.d"
  "/root/repo/src/storage/zigzag_checkpoint.cc" "src/CMakeFiles/tpart.dir/storage/zigzag_checkpoint.cc.o" "gcc" "src/CMakeFiles/tpart.dir/storage/zigzag_checkpoint.cc.o.d"
  "/root/repo/src/tgraph/edge_weight.cc" "src/CMakeFiles/tpart.dir/tgraph/edge_weight.cc.o" "gcc" "src/CMakeFiles/tpart.dir/tgraph/edge_weight.cc.o.d"
  "/root/repo/src/tgraph/sinking.cc" "src/CMakeFiles/tpart.dir/tgraph/sinking.cc.o" "gcc" "src/CMakeFiles/tpart.dir/tgraph/sinking.cc.o.d"
  "/root/repo/src/tgraph/tgraph.cc" "src/CMakeFiles/tpart.dir/tgraph/tgraph.cc.o" "gcc" "src/CMakeFiles/tpart.dir/tgraph/tgraph.cc.o.d"
  "/root/repo/src/txn/procedure.cc" "src/CMakeFiles/tpart.dir/txn/procedure.cc.o" "gcc" "src/CMakeFiles/tpart.dir/txn/procedure.cc.o.d"
  "/root/repo/src/txn/rw_set.cc" "src/CMakeFiles/tpart.dir/txn/rw_set.cc.o" "gcc" "src/CMakeFiles/tpart.dir/txn/rw_set.cc.o.d"
  "/root/repo/src/txn/txn.cc" "src/CMakeFiles/tpart.dir/txn/txn.cc.o" "gcc" "src/CMakeFiles/tpart.dir/txn/txn.cc.o.d"
  "/root/repo/src/workload/micro.cc" "src/CMakeFiles/tpart.dir/workload/micro.cc.o" "gcc" "src/CMakeFiles/tpart.dir/workload/micro.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/CMakeFiles/tpart.dir/workload/tpcc.cc.o" "gcc" "src/CMakeFiles/tpart.dir/workload/tpcc.cc.o.d"
  "/root/repo/src/workload/tpce.cc" "src/CMakeFiles/tpart.dir/workload/tpce.cc.o" "gcc" "src/CMakeFiles/tpart.dir/workload/tpce.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/CMakeFiles/tpart.dir/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/tpart.dir/workload/trace_io.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/tpart.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/tpart.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
