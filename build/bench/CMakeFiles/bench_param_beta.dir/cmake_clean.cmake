file(REMOVE_RECURSE
  "CMakeFiles/bench_param_beta.dir/bench_param_beta.cc.o"
  "CMakeFiles/bench_param_beta.dir/bench_param_beta.cc.o.d"
  "bench_param_beta"
  "bench_param_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
