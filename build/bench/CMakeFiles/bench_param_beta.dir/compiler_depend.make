# Empty compiler generated dependencies file for bench_param_beta.
# This may be replaced when dependencies are built.
