file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_replication.dir/bench_ext_replication.cc.o"
  "CMakeFiles/bench_ext_replication.dir/bench_ext_replication.cc.o.d"
  "bench_ext_replication"
  "bench_ext_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
