file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_edge_weights.dir/bench_ablation_edge_weights.cc.o"
  "CMakeFiles/bench_ablation_edge_weights.dir/bench_ablation_edge_weights.cc.o.d"
  "bench_ablation_edge_weights"
  "bench_ablation_edge_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_edge_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
