# Empty dependencies file for bench_stall_tpcc_like.
# This may be replaced when dependencies are built.
