file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioning_methods.dir/bench_partitioning_methods.cc.o"
  "CMakeFiles/bench_partitioning_methods.dir/bench_partitioning_methods.cc.o.d"
  "bench_partitioning_methods"
  "bench_partitioning_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioning_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
