# Empty compiler generated dependencies file for bench_partitioning_methods.
# This may be replaced when dependencies are built.
