file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioner_quality.dir/bench_partitioner_quality.cc.o"
  "CMakeFiles/bench_partitioner_quality.dir/bench_partitioner_quality.cc.o.d"
  "bench_partitioner_quality"
  "bench_partitioner_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioner_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
