# Empty dependencies file for bench_partitioner_quality.
# This may be replaced when dependencies are built.
