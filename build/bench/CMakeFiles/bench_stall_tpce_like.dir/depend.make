# Empty dependencies file for bench_stall_tpce_like.
# This may be replaced when dependencies are built.
