file(REMOVE_RECURSE
  "CMakeFiles/bench_stall_tpce_like.dir/bench_stall_tpce_like.cc.o"
  "CMakeFiles/bench_stall_tpce_like.dir/bench_stall_tpce_like.cc.o.d"
  "bench_stall_tpce_like"
  "bench_stall_tpce_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stall_tpce_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
