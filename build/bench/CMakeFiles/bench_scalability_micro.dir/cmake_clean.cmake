file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_micro.dir/bench_scalability_micro.cc.o"
  "CMakeFiles/bench_scalability_micro.dir/bench_scalability_micro.cc.o.d"
  "bench_scalability_micro"
  "bench_scalability_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
