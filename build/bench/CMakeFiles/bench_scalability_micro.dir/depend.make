# Empty dependencies file for bench_scalability_micro.
# This may be replaced when dependencies are built.
