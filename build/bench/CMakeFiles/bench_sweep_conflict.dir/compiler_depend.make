# Empty compiler generated dependencies file for bench_sweep_conflict.
# This may be replaced when dependencies are built.
