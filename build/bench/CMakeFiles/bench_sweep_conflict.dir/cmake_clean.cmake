file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_conflict.dir/bench_sweep_conflict.cc.o"
  "CMakeFiles/bench_sweep_conflict.dir/bench_sweep_conflict.cc.o.d"
  "bench_sweep_conflict"
  "bench_sweep_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
