# Empty compiler generated dependencies file for bench_partitioner_speed.
# This may be replaced when dependencies are built.
