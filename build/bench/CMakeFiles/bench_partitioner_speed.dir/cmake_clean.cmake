file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioner_speed.dir/bench_partitioner_speed.cc.o"
  "CMakeFiles/bench_partitioner_speed.dir/bench_partitioner_speed.cc.o.d"
  "bench_partitioner_speed"
  "bench_partitioner_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioner_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
