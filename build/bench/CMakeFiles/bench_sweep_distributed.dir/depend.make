# Empty dependencies file for bench_sweep_distributed.
# This may be replaced when dependencies are built.
