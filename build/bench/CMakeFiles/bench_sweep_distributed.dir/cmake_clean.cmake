file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_distributed.dir/bench_sweep_distributed.cc.o"
  "CMakeFiles/bench_sweep_distributed.dir/bench_sweep_distributed.cc.o.d"
  "bench_sweep_distributed"
  "bench_sweep_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
