# Empty compiler generated dependencies file for bench_ablation_sticky.
# This may be replaced when dependencies are built.
