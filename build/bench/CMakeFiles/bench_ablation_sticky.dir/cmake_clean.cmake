file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sticky.dir/bench_ablation_sticky.cc.o"
  "CMakeFiles/bench_ablation_sticky.dir/bench_ablation_sticky.cc.o.d"
  "bench_ablation_sticky"
  "bench_ablation_sticky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sticky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
