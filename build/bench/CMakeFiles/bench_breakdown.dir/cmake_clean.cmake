file(REMOVE_RECURSE
  "CMakeFiles/bench_breakdown.dir/bench_breakdown.cc.o"
  "CMakeFiles/bench_breakdown.dir/bench_breakdown.cc.o.d"
  "bench_breakdown"
  "bench_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
