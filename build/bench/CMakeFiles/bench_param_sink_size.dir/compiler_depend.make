# Empty compiler generated dependencies file for bench_param_sink_size.
# This may be replaced when dependencies are built.
