file(REMOVE_RECURSE
  "CMakeFiles/bench_param_sink_size.dir/bench_param_sink_size.cc.o"
  "CMakeFiles/bench_param_sink_size.dir/bench_param_sink_size.cc.o.d"
  "bench_param_sink_size"
  "bench_param_sink_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_sink_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
