file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_tpce.dir/bench_scalability_tpce.cc.o"
  "CMakeFiles/bench_scalability_tpce.dir/bench_scalability_tpce.cc.o.d"
  "bench_scalability_tpce"
  "bench_scalability_tpce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_tpce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
