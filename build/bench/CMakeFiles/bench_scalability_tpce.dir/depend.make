# Empty dependencies file for bench_scalability_tpce.
# This may be replaced when dependencies are built.
