file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_remote_records.dir/bench_sweep_remote_records.cc.o"
  "CMakeFiles/bench_sweep_remote_records.dir/bench_sweep_remote_records.cc.o.d"
  "bench_sweep_remote_records"
  "bench_sweep_remote_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_remote_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
