# Empty dependencies file for bench_sweep_remote_records.
# This may be replaced when dependencies are built.
