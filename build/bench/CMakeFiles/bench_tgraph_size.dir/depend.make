# Empty dependencies file for bench_tgraph_size.
# This may be replaced when dependencies are built.
