file(REMOVE_RECURSE
  "CMakeFiles/bench_tgraph_size.dir/bench_tgraph_size.cc.o"
  "CMakeFiles/bench_tgraph_size.dir/bench_tgraph_size.cc.o.d"
  "bench_tgraph_size"
  "bench_tgraph_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tgraph_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
