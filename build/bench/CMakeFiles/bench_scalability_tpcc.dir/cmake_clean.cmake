file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability_tpcc.dir/bench_scalability_tpcc.cc.o"
  "CMakeFiles/bench_scalability_tpcc.dir/bench_scalability_tpcc.cc.o.d"
  "bench_scalability_tpcc"
  "bench_scalability_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
