# Empty dependencies file for bench_scalability_tpcc.
# This may be replaced when dependencies are built.
