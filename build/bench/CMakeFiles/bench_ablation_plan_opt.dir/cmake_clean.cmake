file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_plan_opt.dir/bench_ablation_plan_opt.cc.o"
  "CMakeFiles/bench_ablation_plan_opt.dir/bench_ablation_plan_opt.cc.o.d"
  "bench_ablation_plan_opt"
  "bench_ablation_plan_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_plan_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
