# Empty dependencies file for bench_ablation_plan_opt.
# This may be replaced when dependencies are built.
