file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_skew.dir/bench_sweep_skew.cc.o"
  "CMakeFiles/bench_sweep_skew.dir/bench_sweep_skew.cc.o.d"
  "bench_sweep_skew"
  "bench_sweep_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
