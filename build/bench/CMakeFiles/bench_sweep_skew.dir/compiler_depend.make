# Empty compiler generated dependencies file for bench_sweep_skew.
# This may be replaced when dependencies are built.
