file(REMOVE_RECURSE
  "CMakeFiles/bench_stall_distance.dir/bench_stall_distance.cc.o"
  "CMakeFiles/bench_stall_distance.dir/bench_stall_distance.cc.o.d"
  "bench_stall_distance"
  "bench_stall_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stall_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
