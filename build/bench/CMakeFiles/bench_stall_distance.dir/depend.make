# Empty dependencies file for bench_stall_distance.
# This may be replaced when dependencies are built.
