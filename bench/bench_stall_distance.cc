// E2/E3 — Figure 4(a)/(b): average and maximum stall versus transaction
// distance (j - i), measured over every version dependency in a T-Part
// run. Paper: the average fits a decreasing linear function; the maximum
// fits a (decreasing) sigmoid with a drop around distance 200.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/fit.h"
#include "sim/stall_tracker.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 8000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 8));
  Header("Figure 4(a)/(b): stall vs transaction distance (j - i)");
  // Dense wr-dependencies: small hot sets + high write rate, so most
  // transactions wait on a recent writer's push (what Fig. 4 samples).
  MicroOptions mo = DefaultMicro(machines, txns);
  mo.hot_set_size = 40;
  mo.read_write_rate = 0.9;
  const Workload w = MakeMicroWorkload(mo);
  StallTracker stalls(512);
  RunTPartSim(TPartOpts(machines, /*sink=*/100), w.partition_map,
              w.SequencedRequests(), &stalls);

  std::printf("%14s %12s %12s %10s\n", "distance", "avg us", "max us",
              "samples");
  const std::size_t buckets[][2] = {{1, 8},     {9, 16},    {17, 32},
                                    {33, 64},   {65, 128},  {129, 192},
                                    {193, 256}, {257, 384}, {385, 512}};
  for (const auto& b : buckets) {
    std::size_t n = 0;
    for (std::size_t d = b[0]; d <= b[1]; ++d) {
      n += stalls.AtDistance(d).count();
    }
    std::printf("%6zu-%-7zu %12.1f %12.1f %10zu\n", b[0], b[1],
                stalls.MeanStallInRange(b[0], b[1]) / 1000.0,
                stalls.MaxStallInRange(b[0], b[1]) / 1000.0, n);
  }
  // Fit the curves the way §4.1 does: a line through the per-distance
  // averages, and the knee of the (bucketed) maximums.
  std::vector<std::pair<double, double>> avg_points, max_points;
  for (std::size_t d = 1; d <= stalls.max_distance(); ++d) {
    const auto& s = stalls.AtDistance(d);
    if (s.count() < 5) continue;
    avg_points.push_back({static_cast<double>(d), s.mean() / 1000.0});
  }
  for (const auto& b : buckets) {
    const double mid = static_cast<double>(b[0] + b[1]) / 2.0;
    const double mx = stalls.MaxStallInRange(b[0], b[1]) / 1000.0;
    if (mx > 0) max_points.push_back({mid, mx});
  }
  const LinearFit avg_fit = FitLine(avg_points);
  std::printf("linear fit of avg stall: %.2f us %+0.4f us/distance "
              "(r2=%.2f)\n",
              avg_fit.intercept, avg_fit.slope, avg_fit.r2);
  std::printf("max-stall knee (sigmoid midpoint) at distance ~%.0f\n",
              SigmoidMidpoint(max_points));
  std::printf("(paper: avg decreases ~linearly with distance; max drops "
              "past the sink window, ~2x sink size = 200)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
