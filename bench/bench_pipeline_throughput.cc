// Raw-speed gate for the streaming hot path (ROADMAP item 2): end-to-end
// admit -> schedule -> disseminate -> execute throughput of the threaded
// streaming pipeline on the Microbenchmark, with admit-to-commit latency
// percentiles and a per-transaction heap-allocation count from a counting
// operator-new hook local to this binary.
//
// The JSONL rows ("pipeline_throughput") are the perf trajectory record:
// CI runs this bench, uploads the rows, and asserts that txns/s has not
// regressed below bench/baseline_pipeline_throughput.json (the
// pre-refactor baseline kept in the repo).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench/bench_util.h"
#include "obs/flight_recorder.h"
#include "obs/live_sampler.h"
#include "runtime/cluster.h"

// ---------------------------------------------------------------------
// Counting allocator hook. Linked into this binary only: every global
// operator new/delete bumps a relaxed counter, so (allocs during run) /
// (txns committed) is the allocs-per-transaction figure the
// allocation-free-hot-path work drives toward zero.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tpart::bench {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

struct RunRow {
  double tps = 0.0;
  double secs = 0.0;
  std::uint64_t committed = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  double allocs_per_txn = 0.0;
  double alloc_kb_per_txn = 0.0;
};

RunRow RunOnce(const Workload& w, TransportKind kind,
               std::size_t sink_size, bool obs) {
  LocalClusterOptions opts;
  opts.streaming = true;
  opts.scheduler.sink_size = sink_size;
  opts.transport.kind = kind;
  // The perf configuration: no §5.4 logs (their growth is not what this
  // bench measures) — the recovery benches own that axis.
  opts.record_recovery_logs = false;
  // Observability-armed rows measure the cost of the full live plane:
  // wall-clock metrics sampling, the always-on flight recorder, and
  // trace-context stamping for sampled transactions. The obs-vs-plain
  // delta is the overhead the <=5%-regression gate bounds.
  tpart::obs::LiveSampler sampler(tpart::obs::LiveSampler::Domain::kWall);
  tpart::obs::FlightRecorder flight;
  if (obs) {
    tpart::obs::InstallGlobalFlightRecorder(&flight);
    opts.live_sampler = &sampler;
    opts.sample_every_us = 5'000;
    opts.txn_sample = 64;
  }
  LocalCluster cluster(&w, opts);

  const std::uint64_t allocs_before =
      g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t bytes_before =
      g_alloc_bytes.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  const ClusterRunOutcome out = cluster.RunTPart();
  const double secs = Seconds(std::chrono::steady_clock::now() - start);
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;
  const std::uint64_t bytes =
      g_alloc_bytes.load(std::memory_order_relaxed) - bytes_before;

  if (!out.fault.ok()) {
    std::fprintf(stderr, "run failed: %s\n", out.fault.ToString().c_str());
    std::exit(1);
  }
  RunRow row;
  row.secs = secs;
  row.committed = out.committed;
  row.tps = secs > 0 ? static_cast<double>(out.committed + out.aborted) /
                           secs
                     : 0.0;
  row.p50_us = out.pipeline.admit_to_commit_us.Quantile(0.50);
  row.p99_us = out.pipeline.admit_to_commit_us.Quantile(0.99);
  const double txns =
      static_cast<double>(out.committed + out.aborted);
  row.allocs_per_txn = txns > 0 ? static_cast<double>(allocs) / txns : 0.0;
  row.alloc_kb_per_txn =
      txns > 0 ? static_cast<double>(bytes) / txns / 1024.0 : 0.0;
  return row;
}

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 20'000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 3));
  const auto sink_size =
      static_cast<std::size_t>(IntFlag(argc, argv, "sink-size", 50));
  const auto repeats =
      static_cast<std::size_t>(IntFlag(argc, argv, "repeats", 1));
  const bool json = BoolFlag(argc, argv, "json");

  Header("Streaming pipeline throughput (admit->commit, micro workload)");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));

  struct Config {
    const char* name;
    TransportKind kind;
    bool obs;
  };
  const Config configs[] = {
      {"direct", TransportKind::kDirect, false},
      {"direct+obs", TransportKind::kDirect, true},
      {"inprocess", TransportKind::kInProcess, false},
  };
  std::printf("%12s %12s %10s %10s %12s %14s\n", "transport", "txns/s",
              "p50_us", "p99_us", "allocs/txn", "alloc_kb/txn");
  for (const Config& c : configs) {
    // Best-of-N: the gate compares steady-state capability, not scheduler
    // jitter of a loaded CI host.
    RunRow best;
    for (std::size_t i = 0; i < repeats; ++i) {
      RunRow row = RunOnce(w, c.kind, sink_size, c.obs);
      if (row.tps > best.tps) best = row;
    }
    std::printf("%12s %12.0f %10llu %10llu %12.1f %14.2f\n", c.name,
                best.tps,
                static_cast<unsigned long long>(best.p50_us),
                static_cast<unsigned long long>(best.p99_us),
                best.allocs_per_txn, best.alloc_kb_per_txn);
    if (json) {
      JsonRow("pipeline_throughput")
          .Add("transport", std::string(c.name))
          .Add("machines", static_cast<std::uint64_t>(machines))
          .Add("txns", static_cast<std::uint64_t>(txns))
          .Add("sink_size", static_cast<std::uint64_t>(sink_size))
          .Add("tps", best.tps)
          .Add("p50_us", best.p50_us)
          .Add("p99_us", best.p99_us)
          .Add("allocs_per_txn", best.allocs_per_txn)
          .Add("alloc_kb_per_txn", best.alloc_kb_per_txn)
          .Add("committed", best.committed)
          .Print();
    }
  }
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
