// Ablation (§4.3): plan optimisation on/off — how many remote pushes the
// co-located-relay rewrite eliminates and what it buys in throughput.

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 5000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 4));
  Header("Ablation: plan optimisation (Sec 4.3)");
  // Few writers + hot reads: many same-batch readers of one version, so
  // co-located relays (the paper's T1 -> T5 via T2 rewrite) are common.
  MicroOptions mo = DefaultMicro(machines, txns);
  mo.hot_set_size = 50;
  mo.read_write_rate = 0.2;
  const Workload w = MakeMicroWorkload(mo);
  const auto seq = w.SequencedRequests();

  std::printf("%10s %16s %20s\n", "optimize", "Calvin+TP tps",
              "pushes eliminated");
  for (const bool opt : {false, true}) {
    TPartSimOptions o = TPartOpts(machines);
    o.scheduler.optimize_plans = opt;
    const RunStats r = RunTPartSim(o, w.partition_map, seq);
    std::printf("%10s %16.0f %20llu\n", opt ? "on" : "off",
                r.Throughput(),
                static_cast<unsigned long long>(r.pushes_eliminated));
  }
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
