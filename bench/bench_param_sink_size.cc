// E16 — Figure 11(a): throughput vs sink size. Paper: "either a too
// large or too small sink size has negative impact ... Note that except
// with extreme values, the sink size does not impact the system
// throughput too much. One can easily pick a value around 100."

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 5000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 8));
  Header("Figure 11(a): throughput vs sink size");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  const auto seq = w.SequencedRequests();
  std::printf("%10s %16s %18s\n", "sink size", "Calvin+TP tps",
              "sched ms (total)");
  for (const std::size_t sink : {1u, 5u, 25u, 50u, 100u, 200u, 400u,
                                 800u}) {
    const RunStats r =
        RunTPartSim(TPartOpts(machines, sink), w.partition_map, seq);
    std::printf("%10zu %16.0f %18.1f\n", sink, r.Throughput(),
                r.scheduling_seconds * 1e3);
  }
  std::printf("(paper: flat plateau around 100; degradation at the "
              "extremes)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
