// Ablation (§5.2): sticky caching on/off under a workload with
// "immediate storage reads after write" — access locality whose interval
// exceeds the sinking interval.

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 5000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 8));
  Header("Ablation: sticky caching (Sec 5.2)");
  // Strong locality on a small hot set, small sink size: versions get
  // written back and promptly re-read from storage.
  MicroOptions mo = DefaultMicro(machines, txns);
  mo.hot_set_size = 100;
  const Workload w = MakeMicroWorkload(mo);
  const auto seq = w.SequencedRequests();

  std::printf("%8s %8s %16s %14s\n", "sticky", "ttl", "Calvin+TP tps",
              "sticky hits");
  for (const SinkEpoch ttl : {0u, 2u, 8u}) {
    TPartSimOptions o = TPartOpts(machines, /*sink=*/25);
    o.sticky_ttl = ttl;
    o.scheduler.graph.sticky_cache = ttl > 0;
    const RunStats r = RunTPartSim(o, w.partition_map, seq);
    std::printf("%8s %8llu %16.0f %14llu\n", ttl > 0 ? "on" : "off",
                static_cast<unsigned long long>(ttl), r.Throughput(),
                static_cast<unsigned long long>(r.sticky_hits));
  }
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
