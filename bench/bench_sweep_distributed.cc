// E10 — Figure 8(a): throughput vs distributed-transaction rate.
// Paper: "T-Part leads to 60%~120% speedup when ... the distributed
// transaction rate ... is high. The improvement becomes significant when
// the distributed transaction rate is above 0.2."

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 4000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 8));
  Header("Figure 8(a): throughput vs distributed txn rate");
  std::printf("%10s %14s %14s %9s\n", "dist-rate", "Calvin tps",
              "Calvin+TP tps", "TP/Calvin");
  for (const double rate : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    MicroOptions o = DefaultMicro(machines, txns);
    o.distributed_rate = rate;
    const Workload w = MakeMicroWorkload(o);
    const EnginePair r = RunBoth(w, machines);
    std::printf("%10.1f %14.0f %14.0f %9.2f\n", rate,
                r.calvin.Throughput(), r.tpart.Throughput(),
                r.tpart.Throughput() / r.calvin.Throughput());
  }
  std::printf("(paper: gap opens above rate 0.2, reaching 1.6x-2.2x)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
