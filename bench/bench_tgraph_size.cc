// E4 — Figure 4(c): number of unsunk transactions (T-graph size) over the
// run. Paper: "normally, the number of unsunk transactions ... is under
// 200" with sink size 100 — the window oscillates in
// [sink_size, 2 * sink_size).

#include <cstdio>

#include "bench/bench_util.h"
#include "scheduler/tpart_scheduler.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 5000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 8));
  Header("Figure 4(c): T-graph size (unsunk transactions) over time");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));

  for (const std::size_t sink_size : {50u, 100u, 200u}) {
    TPartScheduler::Options so;
    so.sink_size = sink_size;
    so.graph.num_machines = machines;
    TPartScheduler sched(so, w.partition_map);
    std::size_t samples = 0;
    double sum = 0;
    std::size_t peak = 0;
    for (const TxnSpec& spec : w.SequencedRequests()) {
      sched.OnTxn(spec);
      const std::size_t size = sched.graph().num_unsunk();
      sum += static_cast<double>(size);
      peak = std::max(peak, size);
      ++samples;
    }
    std::printf("sink_size=%3zu: mean graph size %7.1f, peak %4zu "
                "(bound: %zu)\n",
                sink_size, sum / static_cast<double>(samples), peak,
                2 * sink_size);
  }
  std::printf("(paper: with sink size 100 the graph stays under 200)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
