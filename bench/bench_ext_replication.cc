// Extension (§8 future work): "data partitions may be replicated within
// a data center to survive from machine failure and/or to avoid hot
// spots due to reads." Sweeps the replication factor of the storage
// partitions in the T-Part simulator: storage reads hit a reader-local
// replica when one exists; write-backs fan out to every replica.

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 5000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 10));
  Header("Extension (Sec 8): intra-datacenter read replicas");
  // Make storage reads matter: lower distributed rate so cold reads (not
  // pushes) dominate the remote traffic.
  MicroOptions mo = DefaultMicro(machines, txns);
  mo.read_write_rate = 0.2;
  const Workload w = MakeMicroWorkload(mo);
  const auto seq = w.SequencedRequests();
  std::printf("%10s %16s %10s %14s\n", "replicas", "Calvin+TP tps",
              "stall%", "avg wait us");
  for (const std::size_t replicas : {1u, 2u, 3u, 5u}) {
    TPartSimOptions o = TPartOpts(machines);
    o.storage_replicas = replicas;
    const RunStats r = RunTPartSim(o, w.partition_map, seq);
    std::printf("%10zu %16.0f %10.1f %14.1f\n", replicas, r.Throughput(),
                100.0 * r.NetworkStalledFraction(),
                r.stall_wait.mean() / 1000.0);
  }
  std::printf("(replicas turn remote storage reads into local ones at the "
              "cost of fan-out write-backs)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
