#ifndef TPART_BENCH_BENCH_UTIL_H_
#define TPART_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harness. Each bench binary
// regenerates one table or figure of the paper (see DESIGN.md's
// experiment index) and prints the corresponding rows; EXPERIMENTS.md
// records paper-vs-measured.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "sim/calvin_sim.h"
#include "sim/cost_model.h"
#include "sim/tpart_sim.h"
#include "workload/micro.h"
#include "workload/tpcc.h"
#include "workload/tpce.h"

namespace tpart::bench {

/// Flag parsing: --name=value strings.
inline std::string StringFlag(int argc, char** argv, const char* name,
                              const std::string& def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

/// Flag parsing: --name=value integers for scaling experiments up/down.
inline std::int64_t IntFlag(int argc, char** argv, const char* name,
                            std::int64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return def;
}

/// Flag parsing: --name=value doubles (probabilities, ratios).
inline double DoubleFlag(int argc, char** argv, const char* name,
                         double def) {
  const std::string s = StringFlag(argc, argv, name, "");
  return s.empty() ? def : std::atof(s.c_str());
}

/// Flag parsing: bare --name presence.
inline bool BoolFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Prints a header line: "== Figure 5(b): ... ==".
inline void Header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

/// One machine-readable result row, printed as a single JSON object per
/// line (JSONL) so downstream tooling can concatenate rows across bench
/// binaries. Enabled by the shared --json flag; the human-readable table
/// still prints either way.
///
///   JsonRow("scalability_tpcc").Add("machines", m)
///       .Add("tpart_tps", tps).Print();
class JsonRow {
 public:
  explicit JsonRow(const std::string& bench) {
    out_ << "{\"bench\":\"" << bench << "\"";
  }

  JsonRow& Add(const std::string& key, double value) {
    out_ << ",\"" << key << "\":";
    if (std::isfinite(value)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      out_ << buf;
    } else {
      out_ << "null";  // JSON has no Inf/NaN
    }
    return *this;
  }

  JsonRow& Add(const std::string& key, std::uint64_t value) {
    out_ << ",\"" << key << "\":" << value;
    return *this;
  }

  JsonRow& Add(const std::string& key, std::int64_t value) {
    out_ << ",\"" << key << "\":" << value;
    return *this;
  }

  JsonRow& Add(const std::string& key, int value) {
    return Add(key, static_cast<std::int64_t>(value));
  }

  JsonRow& Add(const std::string& key, const std::string& value) {
    out_ << ",\"" << key << "\":\"" << value << "\"";
    return *this;
  }

  void Print() {
    std::printf("%s}\n", out_.str().c_str());
    std::fflush(stdout);
  }

 private:
  std::ostringstream out_;
};

/// Default simulated-cluster cost model for all experiments, including
/// the paper's instance heterogeneity ("not all EC2 instances yield
/// equivalent performance", §6.2): a deterministic ±20% per-machine speed
/// pattern. Laggards are what make Calvin's every-participant barriers
/// expensive.
inline CostModel DefaultCost(std::size_t machines = 0) {
  CostModel cost;
  cost.machine_speed.resize(machines);
  for (std::size_t i = 0; i < machines; ++i) {
    cost.machine_speed[i] = 0.8 + 0.4 * static_cast<double>((i * 7) % 10) /
                                      10.0;
  }
  return cost;
}

/// Microbenchmark defaults (Table 1), scaled down for bench runtime:
/// shapes are preserved; see EXPERIMENTS.md.
inline MicroOptions DefaultMicro(std::size_t machines, std::size_t txns) {
  MicroOptions o;
  o.num_machines = machines;
  o.records_per_machine = 20'000;  // paper: 1,000,000
  o.hot_set_size = 200;            // keeps the paper's 1% hot ratio
  o.num_txns = txns;
  // Table 1 defaults: dist 1.0, rw 0.5, skew 0.3, 10 reads, 9 remote,
  // 5 writes (already the MicroOptions defaults).
  return o;
}

inline CalvinSimOptions CalvinOpts(std::size_t machines) {
  CalvinSimOptions o;
  o.cost = DefaultCost(machines);
  o.num_machines = machines;
  return o;
}

inline TPartSimOptions TPartOpts(std::size_t machines,
                                 std::size_t sink_size = 100) {
  TPartSimOptions o;
  o.cost = DefaultCost(machines);
  o.num_machines = machines;
  o.scheduler.sink_size = sink_size;
  return o;
}

/// Runs both engines on `workload` and prints one table row.
struct EnginePair {
  RunStats calvin;
  RunStats tpart;
};

inline EnginePair RunBoth(const Workload& w, std::size_t machines,
                          std::size_t sink_size = 100) {
  const auto txns = w.SequencedRequests();
  EnginePair out;
  out.calvin = RunCalvinSim(CalvinOpts(machines), *w.partition_map, txns);
  out.tpart = RunTPartSim(TPartOpts(machines, sink_size), w.partition_map,
                          txns);
  return out;
}

}  // namespace tpart::bench

#endif  // TPART_BENCH_BENCH_UTIL_H_
