// E14 — Figure 9: network-stalled transactions under a TPC-C-like
// Microbenchmark configuration ("skewed transaction rate to 0.0 and the
// remote transaction rate to 0.1"), sweeping the number of remote
// operations. Paper: Calvin's stalled fraction grows with remote ops;
// Calvin+TP's does not, and its average waiting time is >30% lower at
// high remote-record counts.

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 5000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 8));
  Header("Figure 9: network stall, TPC-C-like (skew 0.0, dist 0.1)");
  std::printf("%8s | %12s %12s | %14s %14s\n", "remote", "Calvin stall%",
              "TP stall%", "Calvin wait us", "TP wait us");
  for (const int remote : {1, 3, 5, 7, 9}) {
    MicroOptions o = DefaultMicro(machines, txns);
    o.skewed_rate = 0.0;
    o.distributed_rate = 0.1;
    o.remote_records = remote;
    const Workload w = MakeMicroWorkload(o);
    const EnginePair r = RunBoth(w, machines);
    std::printf("%8d | %12.1f %12.1f | %14.1f %14.1f\n", remote,
                100.0 * r.calvin.NetworkStalledFraction(),
                100.0 * r.tpart.NetworkStalledFraction(),
                r.calvin.stall_wait.mean() / 1000.0,
                r.tpart.stall_wait.mean() / 1000.0);
  }
  std::printf("(paper: TP stalled-fraction flat/decreasing; wait time "
              ">30%% lower at 9 remote records)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
