// E1 — the §5.1 comparison table: Streaming-based vs METIS-based
// partitioning of simplified-TPC-E T-graphs at 100 / 1000 / 10000
// transactions, reporting update time (ms), cut weight, and skew.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "partition/multilevel.h"
#include "partition/partition_metrics.h"
#include "partition/streaming_greedy.h"
#include "tgraph/tgraph.h"

namespace tpart::bench {
namespace {

TGraph BuildTpceTGraph(std::size_t num_txns, std::size_t machines) {
  TpceOptions o;
  o.num_machines = machines;
  o.customers_per_machine = 1000;
  o.securities_per_machine = 500;
  o.num_txns = num_txns;
  const Workload w = MakeTpceWorkload(o);
  TGraph::Options go;
  go.num_machines = machines;
  TGraph g(go, w.partition_map);
  for (const TxnSpec& spec : w.SequencedRequests()) g.AddTxn(spec);
  return g;
}

struct Row {
  double ms;
  double cut;
  double skew;
};

template <typename Partitioner>
Row Measure(std::size_t num_txns, std::size_t machines, Partitioner& part) {
  TGraph g = BuildTpceTGraph(num_txns, machines);
  const auto start = std::chrono::steady_clock::now();
  part.Partition(g);
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  const PartitionQuality q = MeasurePartition(g);
  return Row{ms, q.cut, q.skew};
}

void Run(int argc, char** argv) {
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 20));
  Header("Table (Sec 5.1): Streaming vs METIS-based partitioning, "
         "simplified TPC-E, " +
         std::to_string(machines) + " machines");
  std::printf("%8s | %14s %10s %8s | %14s %10s %8s\n", "#Txn",
              "Stream ms", "cut", "skew", "Multilvl ms", "cut", "skew");
  for (const std::size_t n : {100u, 1000u, 10000u}) {
    StreamingGreedyPartitioner stream;
    MultilevelPartitioner multi;
    const Row s = Measure(n, machines, stream);
    const Row m = Measure(n, machines, multi);
    std::printf("%8zu | %14.3f %10.0f %8.0f | %14.3f %10.0f %8.0f\n", n,
                s.ms, s.cut, s.skew, m.ms, m.cut, m.skew);
  }
  std::printf(
      "(paper: streaming 0.14/1.1/12.7 ms, METIS slower with slightly "
      "better cut; trend must match, absolutes depend on hardware)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
