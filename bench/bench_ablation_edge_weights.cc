// Ablation (paper §4.1 / §8 future work): edge-weight models for
// forward-push edges — constant vs linear decay (fit of Fig. 4(a)) vs
// sigmoid (fit of Fig. 4(b)). The paper ships constant weights and leaves
// the sigmoid "to future inquiry"; this bench quantifies the choice.

#include <cstdio>

#include "bench/bench_util.h"
#include "tgraph/edge_weight.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 5000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 8));
  Header("Ablation: forward-push edge-weight model (Sec 4.1 / Sec 8)");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  const auto seq = w.SequencedRequests();

  const std::shared_ptr<const EdgeWeightModel> models[] = {
      std::make_shared<ConstantEdgeWeight>(),
      std::make_shared<LinearDecayEdgeWeight>(),
      std::make_shared<SigmoidEdgeWeight>(),
  };
  std::printf("%14s %16s %10s %14s\n", "model", "Calvin+TP tps", "stall%",
              "avg wait us");
  for (const auto& model : models) {
    TPartSimOptions o = TPartOpts(machines);
    o.scheduler.graph.push_weight = model;
    const RunStats r = RunTPartSim(o, w.partition_map, seq);
    std::printf("%14s %16.0f %10.1f %14.1f\n", model->name(),
                r.Throughput(), 100.0 * r.NetworkStalledFraction(),
                r.stall_wait.mean() / 1000.0);
  }
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
