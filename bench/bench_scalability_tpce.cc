// E6 — Figure 5(b): TPC-E throughput vs number of machines. The
// hard-to-partition case: hash-partitioned tables, nearly all
// transactions distributed, skewed customers. Paper: "Calvin can only
// scale out up to 4 machines ... T-Part is still scalable, and the
// linear scalability preserves up to 22 machines."

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 4000));
  const auto max_machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "max-machines", 30));
  Header("Figure 5(b): TPC-E throughput vs machines");
  std::printf("%9s %14s %14s %9s\n", "machines", "Calvin tps",
              "Calvin+TP tps", "TP/Calvin");
  double calvin_4 = 0, calvin_max = 0, tpart_4 = 0, tpart_max = 0;
  for (std::size_t m : {2u, 4u, 6u, 10u, 14u, 18u, 22u, 26u, 30u}) {
    if (m > max_machines) break;
    TpceOptions o;
    o.num_machines = m;
    o.customers_per_machine = 1000;
    o.securities_per_machine = 500;
    o.num_txns = txns;
    const Workload w = MakeTpceWorkload(o);
    const EnginePair r = RunBoth(w, m);
    std::printf("%9zu %14.0f %14.0f %9.2f\n", m, r.calvin.Throughput(),
                r.tpart.Throughput(),
                r.tpart.Throughput() / r.calvin.Throughput());
    if (m == 4) {
      calvin_4 = r.calvin.Throughput();
      tpart_4 = r.tpart.Throughput();
    }
    calvin_max = std::max(calvin_max, r.calvin.Throughput());
    tpart_max = std::max(tpart_max, r.tpart.Throughput());
  }
  std::printf("Calvin gain beyond 4 machines: %.2fx; Calvin+TP: %.2fx\n",
              calvin_max / calvin_4, tpart_max / tpart_4);
  std::printf("(paper: Calvin saturates around 4-5 machines; Calvin+TP "
              "keeps scaling)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
