// E12 — Figure 8(c): throughput vs skewed-transaction rate. Paper:
// "T-Part significantly outperforms Calvin when the skewness is high.
// This justifies the effectiveness of Algorithm 1 on balancing machine
// loads."

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 4000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 10));
  Header("Figure 8(c): throughput vs skewed txn rate");
  std::printf("%10s %14s %14s %9s\n", "skew-rate", "Calvin tps",
              "Calvin+TP tps", "TP/Calvin");
  for (const double skew : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    MicroOptions o = DefaultMicro(machines, txns);
    o.skewed_rate = skew;
    const Workload w = MakeMicroWorkload(o);
    const EnginePair r = RunBoth(w, machines);
    std::printf("%10.1f %14.0f %14.0f %9.2f\n", skew,
                r.calvin.Throughput(), r.tpart.Throughput(),
                r.tpart.Throughput() / r.calvin.Throughput());
  }
  std::printf("(paper: T-Part's advantage widens as skew rises)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
