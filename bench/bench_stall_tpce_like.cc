// E15 — Figure 10: network stall under the TPC-E-like (default)
// Microbenchmark parameters, sweeping remote operations. Paper: Calvin's
// stalled percentage stays flat (it is already saturated); Calvin+TP's
// decreases; Calvin+TP cuts the average waiting time by >50% at high
// remote-record counts.

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 5000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 8));
  Header("Figure 10: network stall, TPC-E-like (Table 1 defaults)");
  std::printf("%8s | %12s %12s | %14s %14s | %8s\n", "remote",
              "Calvin stall%", "TP stall%", "Calvin wait us", "TP wait us",
              "wait cut");
  for (const int remote : {1, 3, 5, 7, 9}) {
    MicroOptions o = DefaultMicro(machines, txns);
    o.remote_records = remote;
    const Workload w = MakeMicroWorkload(o);
    const EnginePair r = RunBoth(w, machines);
    std::printf("%8d | %12.1f %12.1f | %14.1f %14.1f | %7.0f%%\n", remote,
                100.0 * r.calvin.NetworkStalledFraction(),
                100.0 * r.tpart.NetworkStalledFraction(),
                r.calvin.stall_wait.mean() / 1000.0,
                r.tpart.stall_wait.mean() / 1000.0,
                100.0 * (1.0 - r.tpart.stall_wait.mean() /
                                   r.calvin.stall_wait.mean()));
  }
  std::printf("(paper: >50%% waiting-time reduction at high remote "
              "counts)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
