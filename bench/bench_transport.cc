// Transport microbenchmark: the same Microbenchmark workload run on the
// real threaded cluster over each wire substrate — direct in-memory
// structs, serialized in-process queues (full encode/frame/decode path),
// loopback TCP, and TCP under fault injection — plus a raw wire-format
// encode/decode throughput row. Quantifies what serialization and real
// sockets cost relative to the seed's zero-copy path.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "net/transport.h"
#include "net/wire.h"
#include "runtime/cluster.h"

namespace tpart::bench {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

struct Row {
  double tps = 0;
  TransportStats stats;
};

Row RunOver(const Workload& w, std::size_t txns, TransportOptions transport,
            bool streaming = false) {
  LocalClusterOptions opts;
  opts.scheduler.sink_size = 100;
  opts.transport = transport;
  opts.streaming = streaming;
  LocalCluster cluster(&w, opts);
  const auto start = std::chrono::steady_clock::now();
  const ClusterRunOutcome outcome = cluster.RunTPart();
  const double secs = Seconds(std::chrono::steady_clock::now() - start);
  Row row;
  row.tps = static_cast<double>(txns) / secs;
  row.stats = outcome.transport;
  return row;
}

bool g_json = false;

void PrintRow(const char* name, const Row& row) {
  std::printf("%12s %12.0f %10llu %12llu %10llu %8llu\n", name, row.tps,
              static_cast<unsigned long long>(row.stats.messages_sent),
              static_cast<unsigned long long>(row.stats.bytes_out),
              static_cast<unsigned long long>(row.stats.packets_out),
              static_cast<unsigned long long>(row.stats.retries));
  if (g_json) {
    JsonRow("transport")
        .Add("transport", std::string(name))
        .Add("tps", row.tps)
        .Add("messages_sent", row.stats.messages_sent)
        .Add("bytes_out", row.stats.bytes_out)
        .Add("packets_out", row.stats.packets_out)
        .Add("retries", row.stats.retries)
        .Print();
  }
}

void BenchClusterTransports(std::size_t machines, std::size_t txns) {
  Header("Transport comparison: Microbenchmark on the threaded cluster");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  std::printf("%12s %12s %10s %12s %10s %8s\n", "transport", "tps", "msgs",
              "bytes out", "packets", "retries");

  TransportOptions direct;  // kDirect
  PrintRow("direct", RunOver(w, txns, direct));

  TransportOptions inproc;
  inproc.kind = TransportKind::kInProcess;
  PrintRow("serialized", RunOver(w, txns, inproc));

  TransportOptions tcp;
  tcp.kind = TransportKind::kTcp;
  PrintRow("tcp", RunOver(w, txns, tcp));

  TransportOptions faulty = tcp;
  faulty.faults.drop_prob = 0.01;
  faulty.faults.duplicate_prob = 0.01;
  faulty.faults.delay_prob = 0.02;
  PrintRow("tcp+faults", RunOver(w, txns, faulty));

  PrintRow("inproc+strm", RunOver(w, txns, inproc, /*streaming=*/true));

  std::printf("(expected: direct > serialized > tcp; faults cost retries, "
              "not correctness; the streaming row overlaps scheduling with "
              "execution and adds per-round plan dissemination traffic)\n");
}

void BenchRawWire() {
  Header("Raw wire format: encode/decode throughput");
  Message msg;
  msg.type = Message::Type::kPushVersion;
  msg.key = 0x123456789AB;
  msg.version = 42;
  msg.dst_txn = 77;
  msg.value = Record({1, -2, 300000000000LL, 4}, /*padding_bytes=*/164);
  const std::string bytes = EncodeMessage(msg);

  constexpr int kIters = 2'000'000;
  auto start = std::chrono::steady_clock::now();
  std::size_t sink = 0;
  for (int i = 0; i < kIters; ++i) {
    sink += EncodeMessage(msg).size();
  }
  const double enc_secs = Seconds(std::chrono::steady_clock::now() - start);

  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    auto decoded = DecodeMessage(bytes);
    sink += decoded.ok() ? decoded->key : 0;
  }
  const double dec_secs = Seconds(std::chrono::steady_clock::now() - start);

  std::printf("%12s %14s %14s\n", "", "msgs/sec", "MB/sec");
  std::printf("%12s %14.0f %14.1f\n", "encode", kIters / enc_secs,
              static_cast<double>(kIters) * bytes.size() / enc_secs / 1e6);
  std::printf("%12s %14.0f %14.1f\n", "decode", kIters / dec_secs,
              static_cast<double>(kIters) * bytes.size() / dec_secs / 1e6);
  std::printf("(%zu-byte push-version message; checksum volatile sink=%zu)\n",
              bytes.size(), sink % 10);
}

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 4000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 4));
  g_json = BoolFlag(argc, argv, "json");
  BenchClusterTransports(machines, txns);
  BenchRawWire();
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
