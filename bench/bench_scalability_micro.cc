// E7 — Figure 5(c): system throughput vs number of machines on the
// Microbenchmark with Table-1 default parameters. Expected shape: Calvin
// saturates early; Calvin+TP keeps scaling.

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 4000));
  const auto max_machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "max-machines", 30));
  Header("Figure 5(c): Microbenchmark (default params) throughput vs "
         "machines");
  std::printf("%9s %14s %14s %9s\n", "machines", "Calvin tps",
              "Calvin+TP tps", "TP/Calvin");
  for (std::size_t m : {2u, 4u, 6u, 10u, 14u, 18u, 22u, 26u, 30u}) {
    if (m > max_machines) break;
    const Workload w = MakeMicroWorkload(DefaultMicro(m, txns));
    const EnginePair r = RunBoth(w, m);
    std::printf("%9zu %14.0f %14.0f %9.2f\n", m, r.calvin.Throughput(),
                r.tpart.Throughput(),
                r.tpart.Throughput() / r.calvin.Throughput());
  }
  std::printf("(paper: Calvin flattens, Calvin+TP scales — same trend as "
              "Fig. 5(b))\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
