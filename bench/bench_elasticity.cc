// Elasticity benchmark: what a live membership change costs.
//
// Row set 1 — resize overhead: the same streaming run fixed, grown,
// shrunk, grown-then-shrunk, and grown under the hot-key policy. Reports
// end-to-end throughput, the wall-clock the stream spent paused at
// migration barriers, and the moved-key/bytes volume.
//
// Row set 2 — throughput dip and reconvergence around the cut: the
// dissemination timeline gives the wall-clock gap between consecutive
// sinking rounds. The migration barrier widens the gap at the cut epoch
// (the dip); the rounds after it settle back to the pre-cut cadence.
// Reports dip depth (cut gap / median pre-cut gap) and how many epochs
// the gap needs to fall back under 2x the pre-cut median (convergence).
// Emits both as JSONL (--json) for the CI bench artifact.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "runtime/cluster.h"

namespace tpart::bench {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

bool g_json = false;

LocalClusterOptions StreamingOpts() {
  LocalClusterOptions opts;
  opts.streaming = true;
  opts.scheduler.sink_size = 50;
  return opts;
}

void BenchResizeOverhead(std::size_t machines, std::size_t txns) {
  Header("Resize overhead: fixed vs grow/shrink membership, same workload");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  const SinkEpoch rounds = static_cast<SinkEpoch>(txns / 50);
  const SinkEpoch cut1 = rounds / 3;
  const SinkEpoch cut2 = 2 * rounds / 3;

  struct Config {
    const char* name;
    std::vector<LocalClusterOptions::ResizeEvent> events;
    MigrationPolicy policy;
  };
  const Config configs[] = {
      {"fixed", {}, MigrationPolicy::kRehash},
      {"grow", {{cut1, +1}}, MigrationPolicy::kRehash},
      {"shrink", {{cut1, -1}}, MigrationPolicy::kRehash},
      {"grow_shrink", {{cut1, +1}, {cut2, -1}}, MigrationPolicy::kRehash},
      {"grow_hotkey", {{cut1, +1}}, MigrationPolicy::kHotKey},
  };
  std::printf("%12s %10s %12s %12s %10s %14s\n", "config", "tps",
              "barrier_us", "keys_moved", "routes", "bytes_shipped");
  for (const Config& c : configs) {
    LocalClusterOptions opts = StreamingOpts();
    opts.resize.events = c.events;
    opts.resize.policy = c.policy;
    opts.record_epoch_timeline = true;
    LocalCluster cluster(&w, opts);
    const auto start = std::chrono::steady_clock::now();
    const ClusterRunOutcome out = cluster.RunTPart();
    const double secs = Seconds(std::chrono::steady_clock::now() - start);
    if (!out.fault.ok()) {
      std::printf("%12s  run failed: %s\n", c.name,
                  out.fault.ToString().c_str());
      continue;
    }
    const MigrationStats& mig = out.migration;
    const double tps = static_cast<double>(out.committed) / secs;
    std::printf("%12s %10.0f %12llu %12llu %10llu %14llu\n", c.name, tps,
                static_cast<unsigned long long>(mig.barrier_us),
                static_cast<unsigned long long>(mig.keys_moved),
                static_cast<unsigned long long>(mig.routes),
                static_cast<unsigned long long>(mig.bytes_shipped));
    if (g_json) {
      JsonRow("elasticity_overhead")
          .Add("config", std::string(c.name))
          .Add("tps", tps)
          .Add("committed", out.committed)
          .Add("membership_steps", mig.membership_steps)
          .Add("barrier_us", mig.barrier_us)
          .Add("keys_moved", mig.keys_moved)
          .Add("records_moved", mig.records_moved)
          .Add("routes", mig.routes)
          .Add("bytes_shipped", mig.bytes_shipped)
          .Add("chunks_shipped", mig.chunks_shipped)
          .Add("forced_checkpoints", mig.forced_checkpoints)
          .Print();
    }
  }
}

void BenchDipAndConvergence(std::size_t machines, std::size_t txns) {
  Header("Throughput dip and reconvergence around a mid-run grow");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  const SinkEpoch rounds = static_cast<SinkEpoch>(txns / 50);
  const SinkEpoch cut = rounds / 2;

  LocalClusterOptions opts = StreamingOpts();
  opts.resize.events = {{cut, +1}};
  LocalCluster cluster(&w, opts);
  const ClusterRunOutcome out = cluster.RunTPart();
  if (!out.fault.ok() || out.timeline.size() < 4) {
    std::printf("run failed or timeline too short: %s\n",
                out.fault.ToString().c_str());
    return;
  }

  // Inter-round shipping gaps; the entry whose epoch first exceeds the
  // cut carries the barrier pause.
  std::vector<std::uint64_t> gaps(out.timeline.size(), 0);
  std::vector<std::uint64_t> pre_cut;
  std::size_t cut_idx = 0;
  for (std::size_t i = 1; i < out.timeline.size(); ++i) {
    gaps[i] = out.timeline[i].us_since_start -
              out.timeline[i - 1].us_since_start;
    if (out.timeline[i].epoch <= cut) {
      pre_cut.push_back(gaps[i]);
    } else if (cut_idx == 0) {
      cut_idx = i;
    }
  }
  if (pre_cut.empty() || cut_idx == 0) {
    std::printf("cut epoch %llu outside the run (%zu rounds)\n",
                static_cast<unsigned long long>(cut), out.timeline.size());
    return;
  }
  std::sort(pre_cut.begin(), pre_cut.end());
  const std::uint64_t median = pre_cut[pre_cut.size() / 2];
  const std::uint64_t dip_gap = gaps[cut_idx];
  const double dip_depth =
      median == 0 ? 0.0
                  : static_cast<double>(dip_gap) / static_cast<double>(median);
  // Convergence: rounds past the barrier until the cadence is back under
  // 2x the pre-cut median.
  std::uint64_t convergence_epochs = 0;
  for (std::size_t i = cut_idx + 1; i < gaps.size(); ++i) {
    if (gaps[i] <= 2 * std::max<std::uint64_t>(median, 1)) break;
    ++convergence_epochs;
  }

  std::printf("%10s %12s %12s %12s %14s\n", "cut", "median_us", "dip_us",
              "dip_depth", "converge_ep");
  std::printf("%10llu %12llu %12llu %12.1f %14llu\n",
              static_cast<unsigned long long>(cut),
              static_cast<unsigned long long>(median),
              static_cast<unsigned long long>(dip_gap), dip_depth,
              static_cast<unsigned long long>(convergence_epochs));
  if (g_json) {
    JsonRow("elasticity_dip")
        .Add("cut_epoch", static_cast<std::uint64_t>(cut))
        .Add("median_gap_us", median)
        .Add("dip_gap_us", dip_gap)
        .Add("dip_depth", dip_depth)
        .Add("convergence_epochs", convergence_epochs)
        .Add("barrier_us", out.migration.barrier_us)
        .Add("keys_moved", out.migration.keys_moved)
        .Print();
    for (std::size_t i = 1; i < out.timeline.size(); ++i) {
      JsonRow("elasticity_timeline")
          .Add("epoch", static_cast<std::uint64_t>(out.timeline[i].epoch))
          .Add("us_since_start", out.timeline[i].us_since_start)
          .Add("gap_us", gaps[i])
          .Print();
    }
  }
  std::printf("(the barrier widens exactly one inter-round gap — the cut "
              "epoch's — and the cadence snaps back within a round or "
              "two: the dip is the migration, not a lasting slowdown)\n");
}

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 4000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 3));
  g_json = BoolFlag(argc, argv, "json");
  BenchResizeOverhead(machines, txns);
  BenchDipAndConvergence(machines, txns);
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
