// E11 — Figure 8(b): throughput vs number of remote records per
// distributed transaction. Paper: improvement "when there are more than
// 5 remote records in a transaction".

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 4000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 8));
  Header("Figure 8(b): throughput vs #remote records per distributed txn");
  std::printf("%8s %14s %14s %9s\n", "remote", "Calvin tps",
              "Calvin+TP tps", "TP/Calvin");
  for (const int remote : {1, 3, 5, 7, 9}) {
    MicroOptions o = DefaultMicro(machines, txns);
    o.remote_records = remote;
    const Workload w = MakeMicroWorkload(o);
    const EnginePair r = RunBoth(w, machines);
    std::printf("%8d %14.0f %14.0f %9.2f\n", remote,
                r.calvin.Throughput(), r.tpart.Throughput(),
                r.tpart.Throughput() / r.calvin.Throughput());
  }
  std::printf("(paper: speedup grows with remote records, significant "
              "above 5)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
