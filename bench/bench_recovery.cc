// Recovery benchmark (§5.4): what crash-fault tolerance costs.
//
// Row set 1 — logging overhead: the same streaming run with recovery
// logs (request log + network log) on and off. The logs are what make
// §5.4 local replay possible; their cost is the steady-state tax.
//
// Row set 2 — downtime vs replay length: crash one machine at
// successively later sink epochs and report the detector latency,
// replayed-transaction count, and total downtime reported by
// RecoveryStats. Later crashes replay longer suffixes of the request
// log, so downtime should grow roughly linearly with the crash epoch.
//
// Row set 3 — recovery vs run length: crash near the end of runs 1x,
// 2x and 4x long, with and without periodic checkpointing. Without it,
// replay work tracks the whole run; with --checkpoint-every, recovery
// replays only the suffix since the last capture, so replayed counts
// and the log byte peaks stay flat as the run grows.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "runtime/cluster.h"

namespace tpart::bench {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

LocalClusterOptions StreamingOpts() {
  LocalClusterOptions opts;
  opts.streaming = true;
  opts.scheduler.sink_size = 50;
  return opts;
}

bool g_json = false;

void BenchLoggingOverhead(std::size_t machines, std::size_t txns) {
  Header("Recovery-log overhead: streaming Microbenchmark, logs on/off");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  std::printf("%12s %12s %12s\n", "logs", "tps", "committed");
  for (const bool logs : {false, true}) {
    LocalClusterOptions opts = StreamingOpts();
    opts.record_recovery_logs = logs;
    LocalCluster cluster(&w, opts);
    const auto start = std::chrono::steady_clock::now();
    const ClusterRunOutcome out = cluster.RunTPart();
    const double secs = Seconds(std::chrono::steady_clock::now() - start);
    std::printf("%12s %12.0f %12llu\n", logs ? "on" : "off",
                static_cast<double>(txns) / secs,
                static_cast<unsigned long long>(out.committed));
    if (g_json) {
      JsonRow("recovery_log_overhead")
          .Add("logs", std::string(logs ? "on" : "off"))
          .Add("tps", static_cast<double>(txns) / secs)
          .Add("committed", out.committed)
          .Print();
    }
  }
}

void BenchDowntimeVsCrashEpoch(std::size_t machines, std::size_t txns) {
  Header("Downtime vs replay length: crash machine 1 at epoch E");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  std::printf("%8s %14s %10s %14s %12s %12s\n", "epoch", "detect_us",
              "replayed", "resent_rounds", "downtime_us", "committed");
  for (const SinkEpoch epoch : {2, 4, 8, 16, 32}) {
    LocalClusterOptions opts = StreamingOpts();
    opts.crash.machine = 1;
    opts.crash.at_epoch = epoch;
    opts.detector.enabled = true;
    LocalCluster cluster(&w, opts);
    const ClusterRunOutcome out = cluster.RunTPart();
    if (!out.fault.ok()) {
      std::printf("%8llu  run failed: %s\n",
                  static_cast<unsigned long long>(epoch),
                  out.fault.ToString().c_str());
      continue;
    }
    const RecoveryStats& r = out.recovery;
    std::printf("%8llu %14llu %10llu %14llu %12llu %12llu\n",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(r.detection_latency_us),
                static_cast<unsigned long long>(r.replayed_txns),
                static_cast<unsigned long long>(r.resent_rounds),
                static_cast<unsigned long long>(r.downtime_us),
                static_cast<unsigned long long>(out.committed));
    if (g_json) {
      JsonRow("recovery_downtime")
          .Add("crash_epoch", epoch)
          .Add("detection_us", r.detection_latency_us)
          .Add("replayed", r.replayed_txns)
          .Add("resent_rounds", r.resent_rounds)
          .Add("downtime_us", r.downtime_us)
          .Add("committed", out.committed)
          .Print();
    }
  }
  std::printf("(replayed/downtime grow with the crash epoch: without a "
              "mid-run capture, §5.4 replays the machine's whole request "
              "log since its last checkpoint — here the load-time one)\n");
}

void BenchRecoveryVsRunLength(std::size_t machines, std::size_t txns) {
  Header("Recovery vs run length: crash near the end, checkpointing "
         "off/on");
  std::printf("%8s %12s %10s %12s %12s %14s\n", "factor", "ckpt_every",
              "replayed", "downtime_us", "captures", "log_peak_bytes");
  for (const std::size_t factor : {1u, 2u, 4u}) {
    const std::size_t run_txns = txns * factor;
    const Workload w = MakeMicroWorkload(DefaultMicro(machines, run_txns));
    // ~50 txns per sink round; crash when ~90% of the rounds drained so
    // the unchekpointed replay covers nearly the whole run.
    const SinkEpoch crash_epoch =
        static_cast<SinkEpoch>(run_txns * 9 / (50 * 10));
    for (const SinkEpoch every : {SinkEpoch{0}, SinkEpoch{8}}) {
      LocalClusterOptions opts = StreamingOpts();
      opts.crash.machine = 1;
      opts.crash.at_epoch = crash_epoch;
      opts.detector.enabled = true;
      opts.checkpoint_every = every;
      LocalCluster cluster(&w, opts);
      const ClusterRunOutcome out = cluster.RunTPart();
      if (!out.fault.ok()) {
        std::printf("%8zu  run failed: %s\n", factor,
                    out.fault.ToString().c_str());
        continue;
      }
      const std::uint64_t log_peak =
          out.checkpoint.request_log_bytes_peak +
          out.checkpoint.network_log_bytes_peak;
      std::printf("%8zu %12llu %10llu %12llu %12llu %14llu\n", factor,
                  static_cast<unsigned long long>(every),
                  static_cast<unsigned long long>(out.recovery.replayed_txns),
                  static_cast<unsigned long long>(out.recovery.downtime_us),
                  static_cast<unsigned long long>(
                      out.checkpoint.checkpoints_taken),
                  static_cast<unsigned long long>(log_peak));
      if (g_json) {
        JsonRow("recovery_vs_run_length")
            .Add("factor", factor)
            .Add("checkpoint_every", every)
            .Add("crash_epoch", crash_epoch)
            .Add("replayed", out.recovery.replayed_txns)
            .Add("downtime_us", out.recovery.downtime_us)
            .Add("checkpoints_taken", out.checkpoint.checkpoints_taken)
            .Add("log_peak_bytes", log_peak)
            .Add("committed", out.committed)
            .Print();
      }
    }
  }
  std::printf("(with checkpoint_every set, replayed txns and the log byte "
              "peak stay flat as the run grows 4x: recovery is O(epochs "
              "since the last capture), not O(run length))\n");
}

void BenchCoordinatorFailover(std::size_t machines, std::size_t txns) {
  Header("Coordinator failover: replication tax and leader-crash latency");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  std::printf("%10s %8s %12s %14s %12s %12s %10s %12s\n", "standbys",
              "crash", "tps", "detect_us", "election_us", "replan_us",
              "gap_us", "committed");
  struct Case {
    std::size_t standbys;
    bool crash;
  };
  const Case cases[] = {{0, false}, {1, false}, {2, false}, {1, true},
                        {2, true}};
  for (const Case& c : cases) {
    LocalClusterOptions opts = StreamingOpts();
    opts.coordinator.standbys = c.standbys;
    if (c.crash) {
      // Kill the leader mid-stream: roughly half the rounds shipped.
      opts.crash.coordinator_at.push_back(
          static_cast<SinkEpoch>(txns / (50 * 2)));
    }
    LocalCluster cluster(&w, opts);
    const auto start = std::chrono::steady_clock::now();
    const ClusterRunOutcome out = cluster.RunTPart();
    const double secs = Seconds(std::chrono::steady_clock::now() - start);
    if (!out.fault.ok()) {
      std::printf("%10zu  run failed: %s\n", c.standbys,
                  out.fault.ToString().c_str());
      continue;
    }
    const FailoverStats& f = out.failover;
    std::printf("%10zu %8s %12.0f %14llu %12llu %12llu %10llu %12llu\n",
                c.standbys, c.crash ? "yes" : "no",
                static_cast<double>(txns) / secs,
                static_cast<unsigned long long>(f.detection_latency_us),
                static_cast<unsigned long long>(f.election_us),
                static_cast<unsigned long long>(f.replan_us),
                static_cast<unsigned long long>(f.plan_stream_gap_us),
                static_cast<unsigned long long>(out.committed));
    if (g_json) {
      JsonRow("coordinator_failover")
          .Add("standbys", c.standbys)
          .Add("leader_crash", c.crash ? 1 : 0)
          .Add("tps", static_cast<double>(txns) / secs)
          .Add("committed_batches", f.committed_batches)
          .Add("log_appends", f.log_appends)
          .Add("detection_us", f.detection_latency_us)
          .Add("election_us", f.election_us)
          .Add("replan_us", f.replan_us)
          .Add("plan_stream_gap_us", f.plan_stream_gap_us)
          .Add("replayed_batches", f.replayed_batches)
          .Add("catchup_rounds", f.catchup_rounds)
          .Add("reshipped_rounds", f.reshipped_rounds)
          .Add("committed", out.committed)
          .Print();
    }
  }
  std::printf("(standbys without a crash price the quorum-commit tax; with "
              "a crash, gap_us is end-to-end plan-stream outage: detection "
              "+ election + committed-log replay + watermark catch-up)\n");
}

void BenchPartitionGrayFailure(std::size_t machines, std::size_t txns) {
  Header("Partition / gray failure: sever windows, slow links, and "
         "zombie-leader fencing (DESIGN 4j)");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  // Fault-free baseline for the throughput tax.
  double base_tps = 0;
  {
    LocalClusterOptions opts = StreamingOpts();
    LocalCluster cluster(&w, opts);
    const auto start = std::chrono::steady_clock::now();
    const ClusterRunOutcome out = cluster.RunTPart();
    base_tps = static_cast<double>(out.committed) /
               Seconds(std::chrono::steady_clock::now() - start);
  }
  std::printf("%14s %10s %8s %8s %8s %10s %10s %10s\n", "scenario", "tps",
              "severed", "slowed", "retries", "fenced", "zombies",
              "committed");
  struct Case {
    const char* name;
    bool partition;
    bool slow;
    bool zombie;
  };
  const Case cases[] = {{"partition", true, false, false},
                        {"slow_link", false, true, false},
                        {"part+zombie", true, false, true}};
  const SinkEpoch mid = static_cast<SinkEpoch>(txns / (50 * 2));
  for (const Case& c : cases) {
    LocalClusterOptions opts = StreamingOpts();
    opts.transport.retry_timeout_us = 1000;
    if (c.partition) {
      // Isolate the last machine for a two-epoch window mid-run; the
      // retry layer redelivers everything the window swallowed after
      // the heal, so the tps delta vs the baseline is the heal cost.
      PartitionEvent ev;
      ev.group_a = {static_cast<MachineId>(machines - 1)};
      ev.from_epoch = mid;
      ev.heal_epoch = mid + 2;
      opts.transport.faults.partition.partitions.push_back(ev);
    }
    if (c.slow) {
      SlowLinkEvent slow;
      slow.from = 0;
      slow.to = static_cast<MachineId>(machines - 1);
      slow.from_epoch = 1;
      slow.heal_epoch = mid + 8;
      slow.extra_delay_us = 1200;
      opts.transport.faults.partition.slow_links.push_back(slow);
    }
    if (c.zombie) {
      opts.coordinator.standbys = 1;
      opts.crash.coordinator_at.push_back(mid + 1);
      opts.crash.coordinator_revive_at.push_back(mid + 5);
    }
    LocalCluster cluster(&w, opts);
    const auto start = std::chrono::steady_clock::now();
    const ClusterRunOutcome out = cluster.RunTPart();
    const double secs = Seconds(std::chrono::steady_clock::now() - start);
    if (!out.fault.ok()) {
      std::printf("%14s  run failed: %s\n", c.name,
                  out.fault.ToString().c_str());
      continue;
    }
    std::printf("%14s %10.0f %8llu %8llu %8llu %10llu %10llu %10llu\n",
                c.name, static_cast<double>(out.committed) / secs,
                static_cast<unsigned long long>(out.transport.faults_severed),
                static_cast<unsigned long long>(out.transport.faults_slowed),
                static_cast<unsigned long long>(out.transport.retries),
                static_cast<unsigned long long>(out.failover.fenced_messages),
                static_cast<unsigned long long>(out.failover.zombie_revivals),
                static_cast<unsigned long long>(out.committed));
    if (g_json) {
      JsonRow("partition_gray_failure")
          .Add("scenario", std::string(c.name))
          .Add("tps", static_cast<double>(out.committed) / secs)
          .Add("baseline_tps", base_tps)
          .Add("severed", out.transport.faults_severed)
          .Add("slowed", out.transport.faults_slowed)
          .Add("retries", out.transport.retries)
          .Add("fenced_messages", out.failover.fenced_messages)
          .Add("fenced_appends", out.failover.fenced_appends)
          .Add("zombie_revivals", out.failover.zombie_revivals)
          .Add("plan_stream_gap_us", out.failover.plan_stream_gap_us)
          .Add("committed", out.committed)
          .Print();
    }
  }
  std::printf("(results stay byte-identical to the fault-free run in every "
              "scenario; the tps delta vs baseline prices the heal — retry "
              "redelivery of the severed window — and the fencing of the "
              "revived zombie leader's stale plan stream)\n");
}

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 4000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 3));
  g_json = BoolFlag(argc, argv, "json");
  BenchLoggingOverhead(machines, txns);
  BenchDowntimeVsCrashEpoch(machines, txns);
  BenchRecoveryVsRunLength(machines, txns);
  BenchCoordinatorFailover(machines, txns);
  BenchPartitionGrayFailure(machines, txns);
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
