// Recovery benchmark (§5.4): what crash-fault tolerance costs.
//
// Row set 1 — logging overhead: the same streaming run with recovery
// logs (request log + network log) on and off. The logs are what make
// §5.4 local replay possible; their cost is the steady-state tax.
//
// Row set 2 — downtime vs replay length: crash one machine at
// successively later sink epochs and report the detector latency,
// replayed-transaction count, and total downtime reported by
// RecoveryStats. Later crashes replay longer suffixes of the request
// log, so downtime should grow roughly linearly with the crash epoch.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "runtime/cluster.h"

namespace tpart::bench {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

LocalClusterOptions StreamingOpts() {
  LocalClusterOptions opts;
  opts.streaming = true;
  opts.scheduler.sink_size = 50;
  return opts;
}

bool g_json = false;

void BenchLoggingOverhead(std::size_t machines, std::size_t txns) {
  Header("Recovery-log overhead: streaming Microbenchmark, logs on/off");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  std::printf("%12s %12s %12s\n", "logs", "tps", "committed");
  for (const bool logs : {false, true}) {
    LocalClusterOptions opts = StreamingOpts();
    opts.record_recovery_logs = logs;
    LocalCluster cluster(&w, opts);
    const auto start = std::chrono::steady_clock::now();
    const ClusterRunOutcome out = cluster.RunTPart();
    const double secs = Seconds(std::chrono::steady_clock::now() - start);
    std::printf("%12s %12.0f %12llu\n", logs ? "on" : "off",
                static_cast<double>(txns) / secs,
                static_cast<unsigned long long>(out.committed));
    if (g_json) {
      JsonRow("recovery_log_overhead")
          .Add("logs", std::string(logs ? "on" : "off"))
          .Add("tps", static_cast<double>(txns) / secs)
          .Add("committed", out.committed)
          .Print();
    }
  }
}

void BenchDowntimeVsCrashEpoch(std::size_t machines, std::size_t txns) {
  Header("Downtime vs replay length: crash machine 1 at epoch E");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  std::printf("%8s %14s %10s %14s %12s %12s\n", "epoch", "detect_us",
              "replayed", "resent_rounds", "downtime_us", "committed");
  for (const SinkEpoch epoch : {2, 4, 8, 16, 32}) {
    LocalClusterOptions opts = StreamingOpts();
    opts.crash.machine = 1;
    opts.crash.at_epoch = epoch;
    opts.detector.enabled = true;
    LocalCluster cluster(&w, opts);
    const ClusterRunOutcome out = cluster.RunTPart();
    if (!out.fault.ok()) {
      std::printf("%8llu  run failed: %s\n",
                  static_cast<unsigned long long>(epoch),
                  out.fault.ToString().c_str());
      continue;
    }
    const RecoveryStats& r = out.recovery;
    std::printf("%8llu %14llu %10llu %14llu %12llu %12llu\n",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(r.detection_latency_us),
                static_cast<unsigned long long>(r.replayed_txns),
                static_cast<unsigned long long>(r.resent_rounds),
                static_cast<unsigned long long>(r.downtime_us),
                static_cast<unsigned long long>(out.committed));
    if (g_json) {
      JsonRow("recovery_downtime")
          .Add("crash_epoch", epoch)
          .Add("detection_us", r.detection_latency_us)
          .Add("replayed", r.replayed_txns)
          .Add("resent_rounds", r.resent_rounds)
          .Add("downtime_us", r.downtime_us)
          .Add("committed", out.committed)
          .Print();
    }
  }
  std::printf("(replayed/downtime grow with the crash epoch: §5.4 replays "
              "the machine's whole request log from the load-time "
              "checkpoint)\n");
}

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 4000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 3));
  g_json = BoolFlag(argc, argv, "json");
  BenchLoggingOverhead(machines, txns);
  BenchDowntimeVsCrashEpoch(machines, txns);
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
