// google-benchmark microbenchmarks of the real-time partitioning path
// (§5.1): the per-batch cost of re-streaming the unsunk window and, for
// contrast, a full multilevel repartition — supporting the claim that
// scheduling accounts for well under 0.25% of transaction latency.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "partition/multilevel.h"
#include "partition/streaming_greedy.h"
#include "storage/data_partition.h"
#include "tgraph/tgraph.h"
#include "workload/micro.h"

namespace tpart {
namespace {

TGraph BuildGraph(std::size_t window, std::size_t machines) {
  MicroOptions o;
  o.num_machines = machines;
  o.records_per_machine = 20'000;
  o.hot_set_size = 200;
  o.num_txns = window;
  const Workload w = MakeMicroWorkload(o);
  TGraph::Options go;
  go.num_machines = machines;
  TGraph g(go, w.partition_map);
  for (const TxnSpec& spec : w.SequencedRequests()) g.AddTxn(spec);
  return g;
}

void BM_StreamingGreedy(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  const auto machines = static_cast<std::size_t>(state.range(1));
  TGraph g = BuildGraph(window, machines);
  StreamingGreedyPartitioner part;
  for (auto _ : state) {
    part.Partition(g);
    benchmark::DoNotOptimize(g.node(1).assigned);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(window));
}
BENCHMARK(BM_StreamingGreedy)
    ->Args({100, 10})
    ->Args({200, 10})
    ->Args({200, 30})
    ->Args({1000, 20})
    ->Args({10000, 20});

void BM_MultilevelPartition(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  const auto machines = static_cast<std::size_t>(state.range(1));
  TGraph g = BuildGraph(window, machines);
  MultilevelPartitioner part;
  for (auto _ : state) {
    part.Partition(g);
    benchmark::DoNotOptimize(g.node(1).assigned);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(window));
}
BENCHMARK(BM_MultilevelPartition)
    ->Args({100, 10})
    ->Args({200, 10})
    ->Args({1000, 20});

void BM_TGraphAddTxn(benchmark::State& state) {
  MicroOptions o;
  o.num_machines = 10;
  o.records_per_machine = 20'000;
  o.num_txns = 10'000;
  const Workload w = MakeMicroWorkload(o);
  const auto txns = w.SequencedRequests();
  for (auto _ : state) {
    state.PauseTiming();
    TGraph::Options go;
    go.num_machines = 10;
    TGraph g(go, w.partition_map);
    state.ResumeTiming();
    for (const TxnSpec& spec : txns) g.AddTxn(spec);
    benchmark::DoNotOptimize(g.num_unsunk());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(txns.size()));
}
BENCHMARK(BM_TGraphAddTxn);

}  // namespace
}  // namespace tpart

BENCHMARK_MAIN();
