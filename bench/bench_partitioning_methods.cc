// E8 — Figure 6: 10-minute-average throughput of five partitioning /
// moving methods on the TPC-E-like workload over 20 machines:
//   (a) static hash-based data partitioning        (baseline)
//   (b) static graph-based data partitioning       (Schism, ~+60%)
//   (c) dynamic graph-based data partitioning      (periodic Schism, ~same)
//   (d) dynamic data movement                      (G-Store, ~+270% over c)
//   (e) T-Part                                     (~+30% over d)

#include <cstdio>

#include "baselines/gstore.h"
#include "baselines/schism.h"
#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 6000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 20));
  Header("Figure 6: data partitioning / moving methods, TPC-E-like, " +
         std::to_string(machines) + " machines");

  TpceOptions wo;
  wo.num_machines = machines;
  wo.customers_per_machine = 1000;
  wo.securities_per_machine = 500;
  wo.num_txns = txns;
  const Workload w = MakeTpceWorkload(wo);
  const auto seq = w.SequencedRequests();

  double results[5] = {0, 0, 0, 0, 0};
  const char* names[5] = {"(a) hash partitioning",
                          "(b) Schism (static)",
                          "(c) Schism (periodic)",
                          "(d) G-Store-style movement",
                          "(e) T-Part"};

  // (a) Calvin over the hash placement the workload ships with.
  results[0] =
      RunCalvinSim(CalvinOpts(machines), *w.partition_map, seq)
          .Throughput();

  // (b) Calvin over a Schism placement derived from a training trace.
  SchismOptions sopts;
  sopts.num_machines = machines;
  TpceOptions train = wo;
  train.seed = 7;  // earlier trace of the same workload
  const Workload trace = MakeTpceWorkload(train);
  const auto schism_map =
      BuildSchismPartition(trace.requests, w.partition_map, sopts);
  results[1] =
      RunCalvinSim(CalvinOpts(machines), *schism_map, seq).Throughput();
  std::printf("    [Schism look-back: distributed rate %.2f on its "
              "training trace vs %.2f on the live workload]\n",
              MeasureDistributedRate(trace.requests, *schism_map),
              MeasureDistributedRate(seq, *schism_map));

  // (c) Periodic Schism: re-partition every window using the previous
  // window's trace (migration cost excluded, as in the paper).
  {
    const std::size_t windows = 4;
    const std::size_t per = seq.size() / windows;
    SimTime total_time = 0;
    std::uint64_t total_committed = 0;
    std::shared_ptr<const DataPartitionMap> cur = schism_map;
    for (std::size_t wi = 0; wi < windows; ++wi) {
      std::vector<TxnSpec> slice(
          seq.begin() + static_cast<std::ptrdiff_t>(wi * per),
          wi + 1 == windows
              ? seq.end()
              : seq.begin() + static_cast<std::ptrdiff_t>((wi + 1) * per));
      // Re-sequence the slice from id 1 for the engine.
      TxnId id = 1;
      for (auto& t : slice) t.id = id++;
      const RunStats rs = RunCalvinSim(CalvinOpts(machines), *cur, slice);
      total_time += rs.makespan;
      total_committed += rs.committed;
      // Look back at this window to partition the next one.
      cur = BuildSchismPartition(slice, w.partition_map, sopts);
    }
    results[2] = static_cast<double>(total_committed) * 1e9 /
                 static_cast<double>(total_time);
  }

  // (d) G-Store-style dynamic movement == T-Part with sink size 1 (§6.2).
  results[3] = RunTPartSim(MakeGStoreSimOptions(TPartOpts(machines)),
                           w.partition_map, seq)
                   .Throughput();

  // (e) T-Part proper.
  results[4] =
      RunTPartSim(TPartOpts(machines), w.partition_map, seq).Throughput();

  for (int i = 0; i < 5; ++i) {
    std::printf("%-30s %12.0f tps   (vs hash: %5.2fx)\n", names[i],
                results[i], results[i] / results[0]);
  }
  std::printf("(paper: b ~1.6x a; c ~ b; d >> c; e ~1.3x d)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
