// E13 — Figure 8(d): throughput vs transaction conflict rate, controlled
// by the hot-set size ("the smaller the hot sets, the higher transaction
// conflict rate"). Paper: Calvin is flat (already saturated by
// communication); Calvin+TP dips at very high conflict because "the
// T-graph becomes very dense and hard to partition".

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 4000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 8));
  Header("Figure 8(d): throughput vs conflict rate (hot-set size)");
  std::printf("%10s %12s %14s %14s %9s\n", "hot-set", "conflict%",
              "Calvin tps", "Calvin+TP tps", "TP/Calvin");
  for (const std::uint64_t hot : {10000u, 2000u, 500u, 100u, 20u, 5u}) {
    MicroOptions o = DefaultMicro(machines, txns);
    o.hot_set_size = hot;
    const Workload w = MakeMicroWorkload(o);
    const EnginePair r = RunBoth(w, machines);
    // Conflict proxy: probability two concurrent txns share a hot record.
    const double conflict = 100.0 / static_cast<double>(hot);
    std::printf("%10llu %12.2f %14.0f %14.0f %9.2f\n",
                static_cast<unsigned long long>(hot), conflict,
                r.calvin.Throughput(), r.tpart.Throughput(),
                r.tpart.Throughput() / r.calvin.Throughput());
  }
  std::printf("(paper: Calvin flat; Calvin+TP degrades only at extreme "
              "conflict)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
