// E17 — Figure 11(b): throughput vs the load-balancing coefficient β of
// the extended Algorithm 1 (§6.3.6). Paper: "the throughput is high only
// if β is sufficiently large, justifying the importance of load
// balancing."

#include <cstdio>

#include "bench/bench_util.h"
#include "partition/streaming_greedy.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 5000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 10));
  Header("Figure 11(b): throughput vs beta (load-balance weight)");
  // Skew makes balancing matter.
  MicroOptions mo = DefaultMicro(machines, txns);
  mo.skewed_rate = 0.6;
  const Workload w = MakeMicroWorkload(mo);
  const auto seq = w.SequencedRequests();
  std::printf("%10s %16s %12s\n", "beta", "Calvin+TP tps", "stall%");
  for (const double beta :
       {0.0, 0.001, 0.01, 0.05, 0.1, 0.5, 2.0, 10.0}) {
    TPartSimOptions o = TPartOpts(machines);
    o.partitioner = std::make_shared<StreamingGreedyPartitioner>(
        StreamingGreedyPartitioner::Options{
            StreamingGreedyPartitioner::Mode::kWeighted, beta});
    const RunStats r = RunTPartSim(o, w.partition_map, seq);
    std::printf("%10.3f %16.0f %12.1f\n", beta, r.Throughput(),
                100.0 * r.NetworkStalledFraction());
  }
  std::printf("(paper: low beta starves balance and hurts throughput; "
              "large beta is safe)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
