// E5 — Figure 5(a): TPC-C New-Order throughput vs number of machines.
// TPC-C partitions cleanly by warehouse, so *both* engines scale and
// T-Part "incurs little overhead ... It is safe to turn it on even with
// easy workloads" (§6.1.1).

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 4000));
  const auto max_machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "max-machines", 30));
  const bool json = BoolFlag(argc, argv, "json");
  Header("Figure 5(a): TPC-C New-Order throughput vs machines");
  std::printf("%9s %16s %16s %9s\n", "machines", "Calvin NO-tps",
              "Calvin+TP NO-tps", "TP/Calvin");
  for (std::size_t m : {2u, 4u, 6u, 10u, 14u, 18u, 22u, 26u, 30u}) {
    if (m > max_machines) break;
    TpccOptions o;
    o.num_machines = m;
    o.warehouses_per_machine = 2;
    o.num_txns = txns;
    const Workload w = MakeTpccWorkload(o);
    // Count the New-Order share of committed throughput, as the paper
    // reports New-Order tps.
    std::size_t new_orders = 0;
    for (const auto& spec : w.requests) {
      if (spec.proc == kTpccNewOrder) ++new_orders;
    }
    const double no_share =
        static_cast<double>(new_orders) / static_cast<double>(txns);
    const EnginePair r = RunBoth(w, m);
    std::printf("%9zu %16.0f %16.0f %9.2f\n", m,
                r.calvin.Throughput() * no_share,
                r.tpart.Throughput() * no_share,
                r.tpart.Throughput() / r.calvin.Throughput());
    if (json) {
      JsonRow("scalability_tpcc")
          .Add("machines", m)
          .Add("calvin_no_tps", r.calvin.Throughput() * no_share)
          .Add("tpart_no_tps", r.tpart.Throughput() * no_share)
          .Add("ratio", r.tpart.Throughput() / r.calvin.Throughput())
          .Print();
    }
  }
  std::printf("(paper: both scale out to 30 machines; ratio stays near "
              "1.0)\n");
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
