// E9 — Figure 7: execution-time breakdown per component, Calvin vs
// Calvin+TP, on the Microbenchmark defaults. Paper: "the main cause of
// the transaction delay is the time spent in waiting for remote records.
// And T-Part can reduce about 50% of this cost"; the Schedule component
// is "almost negligible (less than 0.05% of the overall delay)".

#include <cstdio>

#include "bench/bench_util.h"

namespace tpart::bench {
namespace {

void PrintColumn(const char* name, const RunStats& stats) {
  std::printf("%s:\n", name);
  double total = 0;
  for (int i = 0; i < kNumComponents; ++i) {
    total += stats.breakdown.MeanPerTxn(static_cast<Component>(i));
  }
  for (int i = 0; i < kNumComponents; ++i) {
    const auto c = static_cast<Component>(i);
    const double us = stats.breakdown.MeanPerTxn(c) / 1000.0;
    std::printf("  %-14s %10.1f us/txn  (%5.2f%%)\n", ComponentName(c), us,
                100.0 * stats.breakdown.MeanPerTxn(c) / total);
  }
}

void Run(int argc, char** argv) {
  const auto txns =
      static_cast<std::size_t>(IntFlag(argc, argv, "txns", 5000));
  const auto machines =
      static_cast<std::size_t>(IntFlag(argc, argv, "machines", 8));
  Header("Figure 7: execution-time breakdown (Microbenchmark defaults)");
  const Workload w = MakeMicroWorkload(DefaultMicro(machines, txns));
  const EnginePair r = RunBoth(w, machines);
  PrintColumn("Calvin", r.calvin);
  PrintColumn("Calvin+TP", r.tpart);
  // At saturation both engines queue heavily; the comparable quantity is
  // the remote-wait share of the *processing* path (queueing excluded),
  // which is what Fig. 7's bars convey, plus the per-stall wait that
  // Figs. 9/10 report.
  auto share = [](const RunStats& s) {
    double total = 0;
    for (int i = 0; i < kNumComponents; ++i) {
      const auto c = static_cast<Component>(i);
      if (c != Component::kQueueWait) total += s.breakdown.MeanPerTxn(c);
    }
    return s.breakdown.MeanPerTxn(Component::kRemoteWait) / total;
  };
  std::printf("remote-wait share of processing: Calvin %.0f%%, "
              "Calvin+TP %.0f%%\n",
              100.0 * share(r.calvin), 100.0 * share(r.tpart));
  std::printf("avg wait of a network-stalled txn: Calvin %.0f us, "
              "Calvin+TP %.0f us (%.0f%% lower; paper: ~50%%)\n",
              r.calvin.stall_wait.mean() / 1000.0,
              r.tpart.stall_wait.mean() / 1000.0,
              100.0 * (1.0 - r.tpart.stall_wait.mean() /
                                 r.calvin.stall_wait.mean()));
}

}  // namespace
}  // namespace tpart::bench

int main(int argc, char** argv) { tpart::bench::Run(argc, argv); }
